#include "session.hh"

#include "runtime/parallel_exec.hh"
#include "sim/logging.hh"

namespace tss
{

Session::Session(std::string session_name)
    : sessionName(std::move(session_name)),
      ownedCtx(std::make_unique<starss::TaskContext>()),
      ctx(ownedCtx.get())
{}

Session::Session(starss::TaskContext &context, std::string session_name)
    : sessionName(std::move(session_name)), ctx(&context)
{}

Session
Session::forTrace(std::string session_name)
{
    Session s(std::move(session_name));
    s.ownedCtx.reset();
    s.ctx = nullptr;
    s.traceBacked = true;
    return s;
}

void
Session::requireOpen(const char *op) const
{
    if (isSealed)
        fatal("session '%s': %s after seal()", sessionName.c_str(), op);
}

void
Session::requireSealed(const char *op) const
{
    if (!isSealed)
        fatal("session '%s': %s before seal()", sessionName.c_str(),
              op);
}

void
Session::requireContext(const char *op) const
{
    if (!ctx)
        fatal("session '%s': %s needs a context-backed session "
              "(trace-backed sessions hold no kernel functions)",
              sessionName.c_str(), op);
}

void
Session::requireTraceBacked(const char *op) const
{
    if (!traceBacked)
        fatal("session '%s': %s is for trace-backed sessions; submit "
              "kernels via submit()", sessionName.c_str(), op);
}

std::size_t
Session::numTasks() const
{
    return traceBacked ? directTrace.size() : ctx->numTasks();
}

starss::KernelId
Session::addKernel(std::string kernel_name, starss::KernelFn fn,
                   double default_runtime_us)
{
    requireOpen("addKernel()");
    requireContext("addKernel()");
    return ctx->addKernel(std::move(kernel_name), std::move(fn),
                          default_runtime_us);
}

void
Session::registerRegion(const void *ptr, std::size_t bytes)
{
    requireOpen("registerRegion()");
    requireContext("registerRegion()");
    ctx->registerRegion(ptr, bytes);
}

void
Session::submit(starss::KernelId kernel,
                const std::vector<starss::Param> &params,
                double runtime_us)
{
    requireOpen("submit()");
    requireContext("submit()");
    ctx->spawn(kernel, params, runtime_us);
}

std::uint32_t
Session::declareKernel(std::string kernel_name)
{
    requireOpen("declareKernel()");
    requireTraceBacked("declareKernel()");
    return directTrace.addKernel(std::move(kernel_name));
}

void
Session::submitTask(std::uint32_t kernel, Cycle runtime,
                    std::vector<TraceOperand> operands)
{
    requireOpen("submitTask()");
    requireTraceBacked("submitTask()");
    if (kernel >= directTrace.kernelNames.size())
        fatal("session '%s': submitTask() with undeclared kernel %u",
              sessionName.c_str(), kernel);
    TraceTask task;
    task.kernel = kernel;
    task.runtime = runtime;
    task.operands = std::move(operands);
    directTrace.tasks.push_back(std::move(task));
}

void
Session::submitTrace(const TaskTrace &program)
{
    requireOpen("submitTrace()");
    requireTraceBacked("submitTrace()");
    if (directTrace.name.empty())
        directTrace.name = program.name;
    std::vector<std::uint32_t> kernel_map;
    kernel_map.reserve(program.kernelNames.size());
    for (const std::string &kernel : program.kernelNames)
        kernel_map.push_back(directTrace.addKernel(kernel));
    for (const TraceTask &task : program.tasks) {
        TraceTask copy = task;
        copy.kernel = kernel_map.at(task.kernel);
        directTrace.tasks.push_back(std::move(copy));
    }
}

void
Session::seal(const RelocationOptions &opts)
{
    requireOpen("seal()");
    if (traceBacked) {
        map = std::make_unique<RelocationMap>(
            buildRelocationMap(directTrace, opts));
        relocated = map->apply(directTrace);
    } else {
        relocated = ctx->relocatedTrace(opts);
    }
    isSealed = true;
}

const TaskTrace &
Session::trace() const
{
    return traceBacked ? directTrace : ctx->trace();
}

const TaskTrace &
Session::relocatedTrace() const
{
    requireSealed("relocatedTrace()");
    return relocated;
}

const RelocationMap *
Session::relocationMap() const
{
    requireSealed("relocationMap()");
    return map.get();
}

std::unique_ptr<System>
Session::buildSystem(const PipelineConfig &cfg, unsigned gen_threads,
                     bool use_relocated) const
{
    const TaskTrace &image = use_relocated ? relocated : trace();
    SystemBuilder builder(cfg, image);
    if (gen_threads > 1) {
        std::vector<unsigned> thread_of(image.size());
        for (std::size_t t = 0; t < image.size(); ++t)
            thread_of[t] = static_cast<unsigned>(t % gen_threads);
        builder.threads(std::move(thread_of));
    }
    return builder.build();
}

RunResult
Session::simulate(const PipelineConfig &cfg, unsigned gen_threads,
                  bool use_relocated) const
{
    requireSealed("simulate()");
    return buildSystem(cfg, gen_threads, use_relocated)->run();
}

SimReport
Session::simulateMonitored(const PipelineConfig &cfg,
                           unsigned gen_threads, bool use_relocated,
                           std::uint64_t max_events) const
{
    requireSealed("simulateMonitored()");
    auto sys = buildSystem(cfg, gen_threads, use_relocated);
    SimReport report;
    report.liveness = sys->runWatchdog(max_events);
    report.completed = report.liveness.completed;
    if (report.completed)
        report.result = sys->collectResult();
    report.metricsJson = sys->metricsRegistry().snapshot().toJson();
    obs::Tracer *tracer = sys->tracer();
    if (tracer && tracer->mode() == obs::TraceMode::Full)
        report.traceJson = tracer->chromeJson();
    sys->writeObsOutputs();
    return report;
}

void
Session::runSequential()
{
    requireSealed("runSequential()");
    requireContext("runSequential()");
    ctx->runSequential();
}

starss::ParallelRunStats
Session::runParallel(unsigned n_threads)
{
    requireSealed("runParallel()");
    requireContext("runParallel()");
    starss::ParallelExecutor exec(*ctx);
    return exec.runGraph(n_threads);
}

starss::TaskContext &
Session::context()
{
    requireContext("context()");
    return *ctx;
}

} // namespace tss
