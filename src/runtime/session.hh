/**
 * @file
 * Session: the one submission lifecycle shared by batch drivers, the
 * benches and the tss-serve daemon.
 *
 * A Session moves through an explicit state machine:
 *
 *     open --submit()/addKernel()/registerRegion()--> open
 *     open --seal()--> sealed --run or simulate (any number)--> sealed
 *
 * Submitting after seal() or running before it calls fatal(): the
 * contract is that a sealed session is an immutable task program with
 * a fixed relocated image, so every consumer (the simulator, the real
 * executors, the serving pipeline) sees the same frozen stream — no
 * helper has to reach into TaskContext internals or re-derive the
 * relocation on its own.
 *
 * Two backings cover both worlds:
 *
 *  - **Context-backed** (default, and the adopting constructor): wraps
 *    a starss::TaskContext. Tasks are submitted as real kernels over
 *    real memory; after seal() the session can simulate, run
 *    sequentially, or run on the parallel executor. Batch drivers
 *    (driver/experiment.hh runParallelReal) use this.
 *  - **Trace-backed** (`Session::forTrace`): tasks arrive as trace
 *    records with no kernel functions attached — the tss-serve wire
 *    path, where clients stream serialized task programs. Only
 *    simulation is possible; runSequential()/runParallel() fatal().
 *
 * seal(opts) computes the relocated trace once, with the given
 * RelocationOptions — the serving layer passes a per-tenant
 * targetBase so every tenant's program lands in a disjoint carve of
 * the synthetic address space (see serve/service.hh).
 */

#ifndef TSS_RUNTIME_SESSION_HH
#define TSS_RUNTIME_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "runtime/starss.hh"
#include "trace/relocate.hh"
#include "trace/task_trace.hh"

namespace tss
{

/**
 * Outcome of a monitored simulation: the liveness verdict plus, on
 * completion, the full RunResult — and the run's observability
 * artifacts (metrics snapshot, optional Chrome trace). A wedge does
 * not kill the process: `completed == false` with
 * `liveness.wedged == true` carries the diagnosis (occupancy, the
 * culprit operand, the flight-recorder tail) back to the caller —
 * tss-serve turns this into a job report instead of dying.
 */
struct SimReport
{
    bool completed = false;
    LivenessReport liveness;
    RunResult result;        ///< valid only when completed
    std::string metricsJson; ///< registry snapshot (always filled)
    std::string traceJson;   ///< Chrome JSON when tracing was Full
};

/** One task-program submission lifecycle; see the file comment. */
class Session
{
  public:
    /** Open a context-backed session owning a fresh TaskContext. */
    explicit Session(std::string session_name = "session");

    /**
     * Open a context-backed session over an existing context (e.g. a
     * starss::RealProgram's). Non-owning: @p context must outlive the
     * session. Tasks already spawned count as submitted.
     */
    explicit Session(starss::TaskContext &context,
                     std::string session_name = "session");

    /** Open a trace-backed session (no kernel functions; sim only). */
    static Session forTrace(std::string session_name = "session");

    Session(Session &&) = default;
    Session &operator=(Session &&) = default;

    const std::string &name() const { return sessionName; }
    bool sealed() const { return isSealed; }
    std::size_t numTasks() const;

    /// @name Open-state operations; fatal() once sealed.
    /// @{

    /** Register a kernel (context-backed). */
    starss::KernelId addKernel(std::string kernel_name,
                               starss::KernelFn fn,
                               double default_runtime_us = 10.0);

    /** Register a relocatable memory region (context-backed). */
    void registerRegion(const void *ptr, std::size_t bytes);

    /** Submit one task of @p kernel over @p params (context-backed). */
    void submit(starss::KernelId kernel,
                const std::vector<starss::Param> &params,
                double runtime_us = -1.0);

    /** Declare a kernel name, returning its id (trace-backed). */
    std::uint32_t declareKernel(std::string kernel_name);

    /** Submit one trace-record task (trace-backed). */
    void submitTask(std::uint32_t kernel, Cycle runtime,
                    std::vector<TraceOperand> operands);

    /**
     * Submit every task of @p program (trace-backed): kernel names
     * merge into this session's kernel table, tasks append in order.
     * The serving parse stage feeds deserialized submissions here.
     */
    void submitTrace(const TaskTrace &program);

    /**
     * Seal the session: the program is frozen and its relocated image
     * is computed once under @p opts (per-tenant carving passes a
     * dedicated targetBase). Idempotent operations end here — any
     * further submit fatal()s.
     */
    void seal(const RelocationOptions &opts = {});
    /// @}

    /// @name Sealed-state operations; fatal() before seal().
    /// @{

    /** The captured task stream (original addresses). */
    const TaskTrace &trace() const;

    /** The relocated image computed at seal(). */
    const TaskTrace &relocatedTrace() const;

    /**
     * The relocation decisions behind relocatedTrace() — trace-backed
     * sessions only (context-backed relocation lives inside
     * TaskContext); null otherwise. The serving admit stage checks
     * region extents against the tenant carve with this.
     */
    const RelocationMap *relocationMap() const;

    /**
     * Simulate the sealed program on a task superscalar machine built
     * from @p cfg, with @p gen_threads generating threads (round-robin
     * task assignment). Simulates the *relocated* image by default so
     * results are deterministic; pass @p use_relocated = false for the
     * raw captured addresses.
     */
    RunResult simulate(const PipelineConfig &cfg,
                       unsigned gen_threads = 1,
                       bool use_relocated = true) const;

    /**
     * Simulate like simulate(), but survive a wedge or event-limit
     * end: the SimReport carries the liveness verdict, metrics
     * snapshot and (when cfg.traceMode is Full) the Chrome trace
     * instead of fatal()ing. Configured --trace-out/--metrics-out
     * files are still written.
     * @param max_events Watchdog event budget.
     */
    SimReport simulateMonitored(
        const PipelineConfig &cfg, unsigned gen_threads = 1,
        bool use_relocated = true,
        std::uint64_t max_events = ~std::uint64_t(0)) const;

    /** Execute sequentially in program order (context-backed). */
    void runSequential();

    /**
     * Execute on the real thread-pool executor, graph mode
     * (context-backed). @p n_threads == 0 uses hardware concurrency.
     */
    starss::ParallelRunStats runParallel(unsigned n_threads);
    /// @}

    /**
     * The underlying context (context-backed; fatal() otherwise).
     * Escape hatch for executor plumbing that predates Session;
     * new code should go through the lifecycle methods.
     */
    starss::TaskContext &context();

  private:
    std::unique_ptr<System> buildSystem(const PipelineConfig &cfg,
                                        unsigned gen_threads,
                                        bool use_relocated) const;
    void requireOpen(const char *op) const;
    void requireSealed(const char *op) const;
    void requireContext(const char *op) const;
    void requireTraceBacked(const char *op) const;

    std::string sessionName;
    bool isSealed = false;

    /// Context backing: owned (heap, movable) or adopted.
    std::unique_ptr<starss::TaskContext> ownedCtx;
    starss::TaskContext *ctx = nullptr;

    /// Trace backing.
    bool traceBacked = false;
    TaskTrace directTrace;

    /// Computed at seal().
    TaskTrace relocated;
    std::unique_ptr<RelocationMap> map; ///< trace-backed only
};

} // namespace tss

#endif // TSS_RUNTIME_SESSION_HH
