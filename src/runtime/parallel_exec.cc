#include "parallel_exec.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/rename_store.hh"
#include "runtime/work_deque.hh"
#include "sim/logging.hh"

namespace tss::starss
{

namespace
{

/**
 * One dependence counter per task; a task becomes ready when its
 * counter hits zero. The acq_rel decrements make every write of a
 * finished predecessor visible to the task it enables.
 */
void
seedCounters(std::vector<std::atomic<std::int64_t>> &remaining,
             const DepGraph &graph)
{
    for (std::uint32_t t = 0; t < remaining.size(); ++t) {
        remaining[t].store(static_cast<std::int64_t>(graph.inDegree(t)),
                          std::memory_order_relaxed);
    }
}

} // namespace

ParallelExecutor::ParallelExecutor(TaskContext &context)
    : ctx(context),
      graph(DepGraph::build(context.trace(), Semantics::Renamed))
{
}

ParallelRunStats
ParallelExecutor::runThreads(RenameStore &store,
                             std::vector<std::function<void()>> bodies)
{
    ParallelRunStats stats;
    stats.threads = static_cast<unsigned>(bodies.size());
    stats.versions = store.numVersions();

    auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(bodies.size());
    for (auto &body : bodies)
        threads.emplace_back(std::move(body));
    for (auto &thread : threads)
        thread.join();
    store.copyBack();
    auto end = std::chrono::steady_clock::now();

    stats.wallSeconds =
        std::chrono::duration<double>(end - begin).count();
    return stats;
}

ParallelRunStats
ParallelExecutor::runGraph(unsigned n_threads)
{
    if (n_threads == 0)
        n_threads = std::max(1u, std::thread::hardware_concurrency());
    auto n = static_cast<std::uint32_t>(ctx.trace().size());
    if (n == 0) {
        ParallelRunStats stats;
        stats.threads = n_threads;
        return stats;
    }

    RenameStore store(ctx.trace());
    std::vector<std::atomic<std::int64_t>> remaining(n);
    seedCounters(remaining, graph);

    std::vector<std::unique_ptr<WorkDeque>> deques;
    deques.reserve(n_threads);
    for (unsigned w = 0; w < n_threads; ++w)
        deques.push_back(std::make_unique<WorkDeque>(n));

    // Seed the roots round-robin before any worker starts (the
    // single-threaded prologue may use the owner-only push freely).
    std::vector<std::uint32_t> roots = graph.roots();
    for (std::size_t i = 0; i < roots.size(); ++i)
        deques[i % n_threads]->push(roots[i]);

    std::atomic<std::uint32_t> done{0};
    std::atomic<std::uint64_t> total_steals{0};

    auto run_task = [&](std::uint32_t task, unsigned wid) {
        Buffers bufs(store.bind(task, ctx.taskParams(task)));
        ctx.kernelFn(ctx.trace().tasks[task].kernel)(bufs);
        for (std::uint32_t s : graph.succ(task)) {
            if (remaining[s].fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                deques[wid]->push(s);
            }
        }
        done.fetch_add(1, std::memory_order_release);
    };

    auto worker = [&, n](unsigned wid) {
        std::uint64_t steals = 0;
        std::uint32_t task;
        Backoff backoff;
        while (done.load(std::memory_order_acquire) < n) {
            if (deques[wid]->pop(task)) {
                backoff.reset();
                run_task(task, wid);
                continue;
            }
            bool stolen = false;
            for (unsigned k = 1; k < n_threads && !stolen; ++k)
                stolen = deques[(wid + k) % n_threads]->steal(task);
            if (stolen) {
                ++steals;
                backoff.reset();
                run_task(task, wid);
                continue;
            }
            backoff.pause();
        }
        total_steals.fetch_add(steals, std::memory_order_relaxed);
    };

    std::vector<std::function<void()>> bodies;
    bodies.reserve(n_threads);
    for (unsigned w = 0; w < n_threads; ++w)
        bodies.push_back([&worker, w] { worker(w); });

    ParallelRunStats stats = runThreads(store, std::move(bodies));
    stats.steals = total_steals.load(std::memory_order_relaxed);
    return stats;
}

ParallelRunStats
ParallelExecutor::runReplay(const RunResult &schedule)
{
    auto n = static_cast<std::uint32_t>(ctx.trace().size());
    if (schedule.startOrder.size() != n || schedule.coreOf.size() != n)
        fatal("replay: schedule does not cover the captured trace");
    if (!graph.isTopologicalOrder(schedule.startOrder)) {
        fatal("replay: simulated start order violates the renamed "
              "dependency graph");
    }
    if (n == 0)
        return {};

    // Per-core dispatch sequences, in simulated start order.
    unsigned num_cores = 0;
    for (unsigned core : schedule.coreOf) {
        TSS_ASSERT(core != ~0u, "replay: task never started");
        num_cores = std::max(num_cores, core + 1);
    }
    std::vector<std::vector<std::uint32_t>> per_core(num_cores);
    for (std::uint32_t t : schedule.startOrder)
        per_core[schedule.coreOf[t]].push_back(t);

    RenameStore store(ctx.trace());
    std::vector<std::atomic<std::int64_t>> remaining(n);
    seedCounters(remaining, graph);

    // One thread per simulated core that executed at least one task,
    // each obeying its core's dispatch order and waiting for the
    // dependence counter exactly where the simulated core waited for
    // the TRS ready message. The simulated schedule is dependence-
    // consistent (checked above), so every wait terminates.
    auto worker = [&](const std::vector<std::uint32_t> &sequence) {
        Backoff backoff;
        for (std::uint32_t task : sequence) {
            while (remaining[task].load(std::memory_order_acquire) > 0)
                backoff.pause();
            backoff.reset();
            Buffers bufs(store.bind(task, ctx.taskParams(task)));
            ctx.kernelFn(ctx.trace().tasks[task].kernel)(bufs);
            for (std::uint32_t s : graph.succ(task))
                remaining[s].fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    std::vector<std::function<void()>> bodies;
    for (const auto &sequence : per_core) {
        if (!sequence.empty())
            bodies.push_back([&worker, &sequence] { worker(sequence); });
    }
    return runThreads(store, std::move(bodies));
}

ParallelRunStats
TaskContext::runParallel(unsigned n_threads)
{
    ParallelExecutor exec(*this);
    return exec.runGraph(n_threads);
}

} // namespace tss::starss
