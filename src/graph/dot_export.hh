/**
 * @file
 * Graphviz DOT export of task dependency graphs, shaded by kernel as
 * in the paper's Figure 1 (Cholesky 5x5).
 */

#ifndef TSS_GRAPH_DOT_EXPORT_HH
#define TSS_GRAPH_DOT_EXPORT_HH

#include <iosfwd>

#include "graph/dep_graph.hh"
#include "trace/task_trace.hh"

namespace tss
{

/** Options for the DOT writer. */
struct DotOptions
{
    bool numberByCreationOrder = true; ///< 1-based ids as in Figure 1
    bool showKinds = false;            ///< label edges RaW/WaR/WaW
};

/** Write @p graph (built from @p trace) to @p os as DOT. */
void writeDot(std::ostream &os, const TaskTrace &trace,
              const DepGraph &graph, const DotOptions &options = {});

} // namespace tss

#endif // TSS_GRAPH_DOT_EXPORT_HH
