#include "dep_graph.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hh"

namespace tss
{

namespace
{

/** Per-object tracking state while scanning the trace in order. */
struct ObjectState
{
    std::int64_t lastWriter = -1;
    std::vector<std::uint32_t> readersSinceWrite;
};

} // namespace

void
DepGraph::addEdge(std::uint32_t from, std::uint32_t to, DepKind kind)
{
    if (from == to)
        return;
    // Deduplicate: a pair of tasks often shares several objects. Only
    // the first edge between a pair is recorded.
    auto &preds = predecessors[to];
    if (std::find(preds.begin(), preds.end(), from) != preds.end())
        return;
    preds.push_back(from);
    successors[from].push_back(to);
    edges.push_back(DepEdge{from, to, kind});
}

DepGraph
DepGraph::build(const TaskTrace &trace, Semantics semantics)
{
    DepGraph graph;
    auto n = static_cast<std::uint32_t>(trace.size());
    graph.successors.resize(n);
    graph.predecessors.resize(n);

    std::unordered_map<std::uint64_t, ObjectState> objects;
    objects.reserve(trace.size());

    for (std::uint32_t t = 0; t < n; ++t) {
        const TraceTask &task = trace.tasks[t];
        for (const auto &op : task.operands) {
            if (!isMemoryOperand(op.dir))
                continue;
            ObjectState &obj = objects[op.addr];

            if (readsObject(op.dir) && obj.lastWriter >= 0) {
                graph.addEdge(static_cast<std::uint32_t>(obj.lastWriter),
                              t, DepKind::RaW);
            }

            if (writesObject(op.dir)) {
                bool in_place = op.dir == Dir::InOut ||
                    semantics == Semantics::Sequential;
                if (in_place) {
                    // In-place writers wait for the previous
                    // version's readers (WaR) ...
                    for (std::uint32_t r : obj.readersSinceWrite)
                        graph.addEdge(r, t, DepKind::WaR);
                    // ... and, without renaming, for the previous
                    // writer too (WaW). For inout that edge already
                    // exists as RaW.
                    if (semantics == Semantics::Sequential &&
                        op.dir == Dir::Out && obj.lastWriter >= 0) {
                        graph.addEdge(
                            static_cast<std::uint32_t>(obj.lastWriter),
                            t, DepKind::WaW);
                    }
                }
                obj.lastWriter = t;
                obj.readersSinceWrite.clear();
            }

            if (readsObject(op.dir) &&
                obj.lastWriter != static_cast<std::int64_t>(t)) {
                obj.readersSinceWrite.push_back(t);
            }
        }
    }
    return graph;
}

bool
DepGraph::hasEdge(std::uint32_t from, std::uint32_t to) const
{
    const auto &succs = successors[from];
    return std::find(succs.begin(), succs.end(), to) != succs.end();
}

std::vector<std::uint32_t>
DepGraph::roots() const
{
    std::vector<std::uint32_t> result;
    for (std::uint32_t t = 0; t < numTasks(); ++t)
        if (predecessors[t].empty())
            result.push_back(t);
    return result;
}

bool
DepGraph::isTopologicalOrder(const std::vector<std::uint32_t> &order) const
{
    if (order.size() != numTasks())
        return false;
    std::vector<std::uint32_t> position(numTasks(), 0);
    std::vector<bool> seen(numTasks(), false);
    for (std::uint32_t i = 0; i < order.size(); ++i) {
        if (order[i] >= numTasks() || seen[order[i]])
            return false;
        seen[order[i]] = true;
        position[order[i]] = i;
    }
    for (const auto &edge : edges)
        if (position[edge.from] >= position[edge.to])
            return false;
    return true;
}

} // namespace tss
