#include "dot_export.hh"

#include <array>
#include <ostream>

namespace tss
{

namespace
{

const char *
kindName(DepKind kind)
{
    switch (kind) {
      case DepKind::RaW: return "RaW";
      case DepKind::WaR: return "WaR";
      case DepKind::WaW: return "WaW";
    }
    return "?";
}

/** Grey shades per kernel, echoing Figure 1's kernel shading. */
constexpr std::array<const char *, 6> shades = {
    "white", "gray90", "gray75", "gray60", "gray45", "gray30",
};

} // namespace

void
writeDot(std::ostream &os, const TaskTrace &trace, const DepGraph &graph,
         const DotOptions &options)
{
    os << "digraph \"" << trace.name << "\" {\n";
    os << "  node [style=filled, shape=circle];\n";
    for (std::size_t t = 0; t < trace.size(); ++t) {
        const auto &task = trace.tasks[t];
        const char *fill = shades[task.kernel % shades.size()];
        os << "  t" << t << " [label=\""
           << (options.numberByCreationOrder ? t + 1 : t)
           << "\", fillcolor=" << fill << ", tooltip=\""
           << trace.kernelNames[task.kernel] << "\"];\n";
    }
    for (const auto &edge : graph.allEdges()) {
        os << "  t" << edge.from << " -> t" << edge.to;
        if (options.showKinds)
            os << " [label=\"" << kindName(edge.kind) << "\"]";
        os << ";\n";
    }
    os << "}\n";
}

} // namespace tss
