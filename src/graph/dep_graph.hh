/**
 * @file
 * Exact inter-task dependency analysis over a task trace. This is the
 * semantic reference for the whole repository: the hardware pipeline,
 * the software runtime and the functional executor are all validated
 * against the graphs built here.
 *
 * Two semantics are supported:
 *  - `Semantics::Renamed` models the task superscalar pipeline:
 *    `output` operands are renamed into fresh buffers, so WaR and WaW
 *    hazards against them disappear; `inout` operands update their
 *    object in place, so they must wait for the previous version's
 *    readers (WaR) in addition to their true (RaW) producer.
 *  - `Semantics::Sequential` enforces every RaW, WaR and WaW hazard
 *    (the "no renaming" ablation).
 */

#ifndef TSS_GRAPH_DEP_GRAPH_HH
#define TSS_GRAPH_DEP_GRAPH_HH

#include <cstdint>
#include <vector>

#include "trace/task_trace.hh"

namespace tss
{

/** Hazard classes, in the paper's terminology. */
enum class DepKind : std::uint8_t
{
    RaW, ///< true dependency (read after write)
    WaR, ///< anti dependency (write after read)
    WaW, ///< output dependency (write after write)
};

/** Dependency-resolution semantics. */
enum class Semantics : std::uint8_t
{
    Renamed,    ///< pipeline semantics: outputs renamed, inouts chained
    Sequential, ///< all hazards enforced (no renaming)
};

/** One dependency edge: task @p from must finish before @p to starts. */
struct DepEdge
{
    std::uint32_t from;
    std::uint32_t to;
    DepKind kind;

    friend bool
    operator==(const DepEdge &a, const DepEdge &b)
    {
        return a.from == b.from && a.to == b.to && a.kind == b.kind;
    }
};

/**
 * The inter-task dependency DAG of a trace. Node ids are trace task
 * indices (creation order), so any topological order of this graph is
 * a legal execution order.
 */
class DepGraph
{
  public:
    /** Build the graph for @p trace under @p semantics. */
    static DepGraph build(const TaskTrace &trace,
                          Semantics semantics = Semantics::Renamed);

    std::size_t numTasks() const { return successors.size(); }
    std::size_t numEdges() const { return edges.size(); }

    const std::vector<DepEdge> &allEdges() const { return edges; }

    /** Outgoing edge targets of @p task (deduplicated). */
    const std::vector<std::uint32_t> &
    succ(std::uint32_t task) const
    {
        return successors[task];
    }

    /** Incoming edge sources of @p task (deduplicated). */
    const std::vector<std::uint32_t> &
    pred(std::uint32_t task) const
    {
        return predecessors[task];
    }

    /** Number of distinct predecessors. */
    std::size_t
    inDegree(std::uint32_t task) const
    {
        return predecessors[task].size();
    }

    /** True if @p from -> @p to is an edge (any kind). */
    bool hasEdge(std::uint32_t from, std::uint32_t to) const;

    /** Tasks with no predecessors. */
    std::vector<std::uint32_t> roots() const;

    /**
     * Verify that executing tasks in @p order (a permutation of task
     * ids, by start time) is consistent with the graph: every
     * predecessor appears before its successor.
     */
    bool isTopologicalOrder(const std::vector<std::uint32_t> &order) const;

  private:
    void addEdge(std::uint32_t from, std::uint32_t to, DepKind kind);

    std::vector<DepEdge> edges;
    std::vector<std::vector<std::uint32_t>> successors;
    std::vector<std::vector<std::uint32_t>> predecessors;
};

} // namespace tss

#endif // TSS_GRAPH_DEP_GRAPH_HH
