#include "dataflow_limit.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tss
{

double
DataflowSchedule::speedupBound(unsigned processors) const
{
    if (sequential == 0)
        return 0;
    double cp = static_cast<double>(criticalPath);
    double seq = static_cast<double>(sequential);
    double makespan = std::max(cp, seq / processors);
    return seq / makespan;
}

DataflowSchedule
computeDataflowLimit(const TaskTrace &trace, const DepGraph &graph)
{
    TSS_ASSERT(graph.numTasks() == trace.size(),
               "graph/trace size mismatch");

    DataflowSchedule sched;
    auto n = static_cast<std::uint32_t>(trace.size());
    sched.start.assign(n, 0);
    sched.finish.assign(n, 0);

    // Tasks are indexed in creation order and edges always point
    // forward, so a single in-order pass is a topological traversal.
    for (std::uint32_t t = 0; t < n; ++t) {
        Cycle start = 0;
        for (std::uint32_t p : graph.pred(t))
            start = std::max(start, sched.finish[p]);
        sched.start[t] = start;
        sched.finish[t] = start + trace.tasks[t].runtime;
        sched.criticalPath = std::max(sched.criticalPath,
                                      sched.finish[t]);
        sched.sequential += trace.tasks[t].runtime;
    }
    return sched;
}

} // namespace tss
