/**
 * @file
 * Infinite-resource dataflow schedule of a dependency graph: earliest
 * start/finish times, critical-path length, and the resulting
 * available task parallelism. This is the upper bound any pipeline or
 * runtime can reach (paper section VI discusses how window size
 * limits how much of it is uncovered).
 */

#ifndef TSS_GRAPH_DATAFLOW_LIMIT_HH
#define TSS_GRAPH_DATAFLOW_LIMIT_HH

#include <vector>

#include "graph/dep_graph.hh"
#include "trace/task_trace.hh"

namespace tss
{

/** Result of an infinite-resource (PRAM-style) schedule. */
struct DataflowSchedule
{
    std::vector<Cycle> start;  ///< earliest start per task
    std::vector<Cycle> finish; ///< earliest finish per task

    Cycle criticalPath = 0;    ///< makespan with infinite processors
    Cycle sequential = 0;      ///< sum of runtimes

    /** Average parallelism = sequential / criticalPath. */
    double
    parallelism() const
    {
        return criticalPath == 0
            ? 0 : static_cast<double>(sequential) /
                  static_cast<double>(criticalPath);
    }

    /** Ideal speedup on @p processors = seq / max(cp, seq/P). */
    double speedupBound(unsigned processors) const;
};

/**
 * Compute the dataflow limit of @p trace under @p graph (which must
 * have been built from the same trace).
 */
DataflowSchedule computeDataflowLimit(const TaskTrace &trace,
                                      const DepGraph &graph);

} // namespace tss

#endif // TSS_GRAPH_DATAFLOW_LIMIT_HH
