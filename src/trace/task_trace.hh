/**
 * @file
 * The task trace: the stream of annotated tasks emitted by the
 * (sequential) task-generating thread. Traces drive both the task
 * superscalar pipeline and the software-runtime baseline, mirroring
 * the paper's trace-driven TaskSim methodology.
 */

#ifndef TSS_TRACE_TASK_TRACE_HH
#define TSS_TRACE_TASK_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tss
{

/**
 * Operand directionality, as annotated in the StarSs source
 * (`#pragma css task input(...) output(...) inout(...)`). Scalars are
 * by-value inputs that need no dependency tracking.
 */
enum class Dir : std::uint8_t { In, Out, InOut, Scalar };

/** Human-readable name of a directionality. */
const char *dirName(Dir dir);

/** True for operands the ORT must track (memory objects). */
constexpr bool
isMemoryOperand(Dir dir)
{
    return dir != Dir::Scalar;
}

/** True when the operand reads its object (input or inout). */
constexpr bool
readsObject(Dir dir)
{
    return dir == Dir::In || dir == Dir::InOut;
}

/** True when the operand writes its object (output or inout). */
constexpr bool
writesObject(Dir dir)
{
    return dir == Dir::Out || dir == Dir::InOut;
}

/** One task operand: direction, base address and object size. */
struct TraceOperand
{
    Dir dir = Dir::In;
    std::uint64_t addr = 0;
    Bytes bytes = 0;
};

/** One dynamic task instance. */
struct TraceTask
{
    /** Index into TaskTrace::kernelNames. */
    std::uint32_t kernel = 0;

    /** Execution time on a worker core, in cycles. */
    Cycle runtime = 0;

    std::vector<TraceOperand> operands;

    /** Number of operands the ORTs must process. */
    unsigned
    numMemoryOperands() const
    {
        unsigned n = 0;
        for (const auto &op : operands)
            n += isMemoryOperand(op.dir) ? 1 : 0;
        return n;
    }

    /** Total bytes of memory objects touched by this task. */
    Bytes
    dataBytes() const
    {
        Bytes total = 0;
        for (const auto &op : operands)
            if (isMemoryOperand(op.dir))
                total += op.bytes;
        return total;
    }
};

/** A complete task stream produced by one task-generating thread. */
struct TaskTrace
{
    std::string name;
    std::vector<std::string> kernelNames;
    std::vector<TraceTask> tasks;

    std::size_t size() const { return tasks.size(); }
    bool empty() const { return tasks.empty(); }

    /** Register a kernel name, returning its id. */
    std::uint32_t
    addKernel(std::string kernel_name)
    {
        kernelNames.push_back(std::move(kernel_name));
        return static_cast<std::uint32_t>(kernelNames.size() - 1);
    }

    /** Sum of all task runtimes = sequential execution time. */
    Cycle
    sequentialCycles() const
    {
        Cycle total = 0;
        for (const auto &t : tasks)
            total += t.runtime;
        return total;
    }
};

} // namespace tss

#endif // TSS_TRACE_TASK_TRACE_HH
