/**
 * @file
 * Deterministic trace relocation: rebase the operand addresses of a
 * captured task trace onto the synthetic AddressSpace so that
 * simulated routing (PipelineConfig::shardOf) and therefore simulated
 * timing no longer depend on where the host allocator and ASLR placed
 * the program's memory. Real StarSs kernels become reproducible,
 * CI-gateable citizens of the benchmark suite.
 *
 * The pass discovers distinct memory *regions* in the source address
 * space — either exactly, from a capture-side region registry
 * (starss::TaskContext::registerRegion), or by inference from the
 * operands themselves (interval merging of overlapping/abutting
 * accesses plus stride coalescing of equally-spaced, equally-sized
 * runs) — and places each region at a fresh synthetic base. Regions
 * are placed in first-touch trace order (stable across runs because
 * the trace *structure* is deterministic even when its addresses are
 * not); a non-zero layout seed shuffles the placement order instead,
 * for layout-sensitivity sweeps.
 *
 * Aliasing is preserved exactly: all addresses of one region shift by
 * one delta (intra-region offsets survive) and distinct regions land
 * in disjoint target ranges, so two operands overlap after relocation
 * iff they overlapped before. The renamed dependency graph — and with
 * it the differential oracle — is therefore invariant under
 * relocation; only the directory slice an address hashes to changes,
 * deterministically.
 */

#ifndef TSS_TRACE_RELOCATE_HH
#define TSS_TRACE_RELOCATE_HH

#include <cstdint>
#include <vector>

#include "trace/task_trace.hh"

namespace tss
{

/** One source-address-space memory region. */
struct MemRegion
{
    std::uint64_t base = 0;
    Bytes bytes = 0;
};

/** Knobs of the relocation pass. */
struct RelocationOptions
{
    /// Base of the synthetic target range (matches the AddressSpace
    /// the synthetic workload generators draw from).
    std::uint64_t targetBase = 0x1000'0000;

    /// Region base alignment in the target range. Also the minimum
    /// gap unit between regions, so relocated regions never overlap.
    std::uint64_t alignment = 256;

    /**
     * 0 (default): place regions in first-touch trace order — the
     * canonical deterministic layout. Non-zero: a seeded shuffle of
     * the placement order, for layout-sensitivity sweeps (aliasing
     * is preserved either way).
     */
    std::uint64_t layoutSeed = 0;
};

/** One region's relocation decision. */
struct RelocatedRegion
{
    std::uint64_t sourceBase = 0;
    std::uint64_t targetBase = 0;
    Bytes bytes = 0;

    /// Trace index of the first task touching the region (placement
    /// key when RelocationOptions::layoutSeed == 0).
    std::uint32_t firstTouchTask = 0;
};

/**
 * The address mapping of one relocation pass: a set of disjoint
 * source regions, each with its target base. Build with
 * buildRelocationMap().
 */
class RelocationMap
{
  public:
    /** Regions sorted by source base. */
    const std::vector<RelocatedRegion> &regions() const
    {
        return _regions;
    }

    /**
     * Rebase @p addr; calls fatal() when no region contains it (the
     * trace the map was built from never touched that address).
     */
    std::uint64_t relocate(std::uint64_t addr) const;

    /** Region containing @p addr, or null. */
    const RelocatedRegion *find(std::uint64_t addr) const;

    /** Copy of @p trace with every memory operand rebased. */
    TaskTrace apply(const TaskTrace &trace) const;

  private:
    friend RelocationMap buildRelocationMap(
        const TaskTrace &, const RelocationOptions &,
        const std::vector<MemRegion> &);
    friend RelocationMap buildRelocationMapFromIds(
        const TaskTrace &, const std::vector<MemRegion> &,
        const std::vector<std::vector<std::int32_t>> &,
        const RelocationOptions &);

    std::vector<RelocatedRegion> _regions; ///< sorted by sourceBase
};

/**
 * Discover the memory regions of @p trace and lay them out in the
 * synthetic target range.
 *
 * With a non-empty @p captured registry (exact region extents recorded
 * at capture time), every memory operand must lie entirely inside one
 * captured region — fatal() otherwise — and only touched regions are
 * placed. This is the allocator-independent path real programs use:
 * two captures of the same program relocate identically no matter how
 * the heap happened to arrange the regions.
 *
 * Without a registry, regions are inferred: operand intervals that
 * overlap or abut merge into one region, and runs of at least three
 * equally-sized regions at a constant stride below twice their size
 * coalesce into one strided region (sub-block accesses walking a
 * larger allocation). Inference cannot tell deliberately adjacent
 * sub-blocks from separate allocations the allocator happened to
 * place back to back, which is exactly why captures record regions.
 */
RelocationMap buildRelocationMap(
    const TaskTrace &trace, const RelocationOptions &opts = {},
    const std::vector<MemRegion> &captured = {});

/**
 * Registry path without re-deriving containment: @p region_of names,
 * per task and operand of @p trace, the index into @p captured each
 * memory operand was resolved to at capture time (-1 = unresolved,
 * fatal() here), exactly the ids starss::TaskContext records at
 * spawn(). Produces the same layout as buildRelocationMap() over the
 * same registry.
 */
RelocationMap buildRelocationMapFromIds(
    const TaskTrace &trace, const std::vector<MemRegion> &captured,
    const std::vector<std::vector<std::int32_t>> &region_of,
    const RelocationOptions &opts = {});

/** One-shot convenience: build the map and apply it. */
TaskTrace relocateTrace(const TaskTrace &trace,
                        const RelocationOptions &opts = {},
                        const std::vector<MemRegion> &captured = {});

/**
 * True when the memory operands of @p a and @p b (same shape
 * required) have identical pairwise overlap/equality relations — the
 * soundness condition of relocation: two operands collide after iff
 * they collided before. Quadratic; intended for tests.
 */
bool sameAliasing(const TaskTrace &a, const TaskTrace &b);

} // namespace tss

#endif // TSS_TRACE_RELOCATE_HH
