/**
 * @file
 * Plain-text serialization of task traces, so workloads can be
 * generated once and replayed, inspected, or diffed.
 *
 * Format (line oriented):
 *   trace <name>
 *   kernel <id> <name>
 *   task <kernel-id> <runtime-cycles> <num-operands>
 *   op <dir> <addr-hex> <bytes>
 */

#ifndef TSS_TRACE_TRACE_IO_HH
#define TSS_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/task_trace.hh"

namespace tss
{

/** Write @p trace to @p os in the text format. */
void writeTrace(std::ostream &os, const TaskTrace &trace);

/**
 * Parse a trace from @p is.
 * @throws none; calls fatal() on malformed input.
 */
TaskTrace readTrace(std::istream &is);

/** Convenience file wrappers. */
void saveTrace(const std::string &path, const TaskTrace &trace);
TaskTrace loadTrace(const std::string &path);

} // namespace tss

#endif // TSS_TRACE_TRACE_IO_HH
