/**
 * @file
 * Table I statistics over a task trace: per-task data size, runtime
 * distribution, and the decode-rate limit R = T_min / P for driving a
 * P-way CMP (paper section II).
 */

#ifndef TSS_TRACE_TRACE_STATS_HH
#define TSS_TRACE_TRACE_STATS_HH

#include <string>

#include "trace/task_trace.hh"

namespace tss
{

/** Aggregate statistics of a trace, in Table I's units. */
struct TraceStats
{
    std::string name;
    std::size_t numTasks = 0;

    double avgDataKB = 0;      ///< average per-task data footprint
    double minRuntimeUs = 0;   ///< shortest task
    double medRuntimeUs = 0;   ///< median task
    double avgRuntimeUs = 0;   ///< mean task

    double avgOperands = 0;    ///< mean memory operands per task
    double maxOperands = 0;

    /** Decode-rate limit (ns/task) to keep @p processors busy. */
    double decodeRateLimitNs(unsigned processors = 256) const;

    /** Compute statistics for @p trace under @p clock. */
    static TraceStats compute(const TaskTrace &trace,
                              const Clock &clock = defaultClock);
};

} // namespace tss

#endif // TSS_TRACE_TRACE_STATS_HH
