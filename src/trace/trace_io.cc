#include "trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace tss
{

namespace
{

Dir
parseDir(const std::string &s)
{
    if (s == "in")
        return Dir::In;
    if (s == "out")
        return Dir::Out;
    if (s == "inout")
        return Dir::InOut;
    if (s == "scalar")
        return Dir::Scalar;
    fatal("bad operand direction '%s' in trace", s.c_str());
}

} // namespace

void
writeTrace(std::ostream &os, const TaskTrace &trace)
{
    os << "trace " << trace.name << "\n";
    for (std::size_t k = 0; k < trace.kernelNames.size(); ++k)
        os << "kernel " << k << " " << trace.kernelNames[k] << "\n";
    for (const auto &task : trace.tasks) {
        os << "task " << task.kernel << " " << task.runtime << " "
           << task.operands.size() << "\n";
        for (const auto &op : task.operands) {
            os << "op " << dirName(op.dir) << " " << std::hex
               << op.addr << std::dec << " " << op.bytes << "\n";
        }
    }
}

TaskTrace
readTrace(std::istream &is)
{
    TaskTrace trace;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "trace") {
            ls >> trace.name;
        } else if (tag == "kernel") {
            std::size_t id;
            std::string kname;
            ls >> id >> kname;
            if (id != trace.kernelNames.size())
                fatal("non-sequential kernel id %zu in trace", id);
            trace.kernelNames.push_back(kname);
        } else if (tag == "task") {
            TraceTask task;
            std::size_t nops;
            ls >> task.kernel >> task.runtime >> nops;
            task.operands.reserve(nops);
            for (std::size_t i = 0; i < nops; ++i) {
                if (!std::getline(is, line))
                    fatal("truncated trace: missing operand line");
                std::istringstream ops(line);
                std::string optag, dir;
                TraceOperand op;
                ops >> optag >> dir >> std::hex >> op.addr >> std::dec
                    >> op.bytes;
                if (optag != "op")
                    fatal("expected 'op' line, got '%s'", line.c_str());
                op.dir = parseDir(dir);
                task.operands.push_back(op);
            }
            trace.tasks.push_back(std::move(task));
        } else {
            fatal("unknown trace line tag '%s'", tag.c_str());
        }
    }
    return trace;
}

void
saveTrace(const std::string &path, const TaskTrace &trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeTrace(os, trace);
}

TaskTrace
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    return readTrace(is);
}

} // namespace tss
