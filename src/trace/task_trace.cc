#include "task_trace.hh"

namespace tss
{

const char *
dirName(Dir dir)
{
    switch (dir) {
      case Dir::In: return "in";
      case Dir::Out: return "out";
      case Dir::InOut: return "inout";
      case Dir::Scalar: return "scalar";
    }
    return "?";
}

} // namespace tss
