#include "trace_stats.hh"

#include "sim/stats.hh"

namespace tss
{

double
TraceStats::decodeRateLimitNs(unsigned processors) const
{
    if (processors == 0)
        return 0;
    return minRuntimeUs * 1000.0 / static_cast<double>(processors);
}

TraceStats
TraceStats::compute(const TaskTrace &trace, const Clock &clock)
{
    TraceStats stats;
    stats.name = trace.name;
    stats.numTasks = trace.size();

    Distribution data_kb;
    Distribution runtime_us;
    Distribution operands;
    for (const auto &task : trace.tasks) {
        data_kb.sample(static_cast<double>(task.dataBytes()) / 1024.0);
        runtime_us.sample(clock.cyclesToUs(task.runtime));
        operands.sample(task.numMemoryOperands());
    }

    stats.avgDataKB = data_kb.mean();
    stats.minRuntimeUs = runtime_us.min();
    stats.medRuntimeUs = runtime_us.median();
    stats.avgRuntimeUs = runtime_us.mean();
    stats.avgOperands = operands.mean();
    stats.maxOperands = operands.max();
    return stats;
}

} // namespace tss
