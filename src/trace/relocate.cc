#include "relocate.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "workload/address_space.hh"

namespace tss
{

namespace
{

/** One memory-operand access, in trace order. */
struct Touch
{
    std::uint64_t base = 0;
    Bytes bytes = 0;
    std::uint32_t task = 0;
    std::uint32_t operand = 0;
};

std::vector<Touch>
collectTouches(const TaskTrace &trace)
{
    std::vector<Touch> touches;
    for (std::uint32_t t = 0;
         t < static_cast<std::uint32_t>(trace.size()); ++t) {
        const TraceTask &task = trace.tasks[t];
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(task.operands.size()); ++i) {
            const TraceOperand &op = task.operands[i];
            if (!isMemoryOperand(op.dir))
                continue;
            touches.push_back(
                Touch{op.addr, std::max<Bytes>(op.bytes, 1), t, i});
        }
    }
    return touches;
}

/** A discovered region plus its placement key. */
struct Discovered
{
    std::uint64_t base = 0;
    Bytes bytes = 0;
    std::uint32_t firstTask = ~0u;
    std::uint32_t firstOperand = ~0u;

    void
    touch(const Touch &t)
    {
        if (t.task < firstTask ||
            (t.task == firstTask && t.operand < firstOperand)) {
            firstTask = t.task;
            firstOperand = t.operand;
        }
    }
};

/**
 * Base-sorted copy of the capture registry, validated: overlapping
 * registered regions would let relocation double-map addresses and
 * break aliasing, so they are rejected. Both registry paths (operand
 * containment here, recorded ids in buildRelocationMapFromIds) start
 * from this one prologue.
 */
std::vector<MemRegion>
sortedRegistry(const std::vector<MemRegion> &captured)
{
    std::vector<MemRegion> sorted = captured;
    std::sort(sorted.begin(), sorted.end(),
              [](const MemRegion &a, const MemRegion &b) {
                  return a.base < b.base;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        if (sorted[i - 1].base + sorted[i - 1].bytes > sorted[i].base) {
            fatal("captured regions overlap: [%llx,+%llu) and "
                  "[%llx,+%llu)",
                  (unsigned long long)sorted[i - 1].base,
                  (unsigned long long)sorted[i - 1].bytes,
                  (unsigned long long)sorted[i].base,
                  (unsigned long long)sorted[i].bytes);
        }
    }
    return sorted;
}

/**
 * Exact region extents from the capture-side registry: every touch
 * must fall entirely inside one captured region; only touched regions
 * survive.
 */
std::vector<Discovered>
regionsFromRegistry(const std::vector<Touch> &touches,
                    const std::vector<MemRegion> &captured)
{
    std::vector<MemRegion> sorted = sortedRegistry(captured);
    std::vector<Discovered> regions(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        regions[i].base = sorted[i].base;
        regions[i].bytes = sorted[i].bytes;
    }
    for (const Touch &t : touches) {
        // Last region with base <= t.base.
        auto it = std::upper_bound(
            sorted.begin(), sorted.end(), t.base,
            [](std::uint64_t addr, const MemRegion &r) {
                return addr < r.base;
            });
        if (it == sorted.begin() ||
            t.base + t.bytes > (it - 1)->base + (it - 1)->bytes) {
            fatal("operand [%llx,+%llu) of task %u is not contained "
                  "in any captured region",
                  (unsigned long long)t.base, (unsigned long long)t.bytes,
                  t.task);
        }
        regions[static_cast<std::size_t>(it - 1 - sorted.begin())]
            .touch(t);
    }

    // Registered but never-touched regions do not occupy layout slots.
    std::erase_if(regions, [](const Discovered &r) {
        return r.firstTask == ~0u;
    });
    return regions;
}

/**
 * Inferred regions: merge overlapping/abutting operand intervals,
 * then coalesce runs of >= 3 equally-sized regions at one constant
 * stride below twice their size (strided sub-block walks of a larger
 * allocation).
 */
std::vector<Discovered>
regionsByInference(std::vector<Touch> touches)
{
    std::sort(touches.begin(), touches.end(),
              [](const Touch &a, const Touch &b) {
                  if (a.base != b.base)
                      return a.base < b.base;
                  return a.bytes < b.bytes;
              });

    std::vector<Discovered> merged;
    for (const Touch &t : touches) {
        if (!merged.empty() &&
            t.base <= merged.back().base + merged.back().bytes) {
            Discovered &r = merged.back();
            r.bytes = std::max<Bytes>(
                r.bytes, t.base + t.bytes - r.base);
            r.touch(t);
        } else {
            Discovered r;
            r.base = t.base;
            r.bytes = t.bytes;
            r.touch(t);
            merged.push_back(r);
        }
    }

    // Stride coalescing over the merged, base-sorted regions.
    std::vector<Discovered> out;
    std::size_t i = 0;
    while (i < merged.size()) {
        std::size_t run = 1;
        if (i + 1 < merged.size() &&
            merged[i + 1].bytes == merged[i].bytes) {
            std::uint64_t stride = merged[i + 1].base - merged[i].base;
            if (stride > merged[i].bytes &&
                stride < 2 * merged[i].bytes) {
                while (i + run < merged.size() &&
                       merged[i + run].bytes == merged[i].bytes &&
                       merged[i + run].base ==
                           merged[i].base + run * stride) {
                    ++run;
                }
            }
        }
        if (run >= 3) {
            Discovered r = merged[i];
            for (std::size_t k = 1; k < run; ++k) {
                const Discovered &m = merged[i + k];
                r.bytes = m.base + m.bytes - r.base;
                if (m.firstTask < r.firstTask ||
                    (m.firstTask == r.firstTask &&
                     m.firstOperand < r.firstOperand)) {
                    r.firstTask = m.firstTask;
                    r.firstOperand = m.firstOperand;
                }
            }
            out.push_back(r);
            i += run;
        } else {
            out.push_back(merged[i]);
            ++i;
        }
    }
    return out;
}

/**
 * Lay discovered regions out in the synthetic target range: placement
 * order is first-touch trace position — a property of the trace's
 * *structure*, identical no matter where the source allocator placed
 * the regions ((firstTask, firstOperand) is unique per region, so the
 * order is total) — or a seeded shuffle of it.
 */
std::vector<RelocatedRegion>
placeRegions(const std::vector<Discovered> &regions,
             const RelocationOptions &opts)
{
    std::vector<std::size_t> order(regions.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (regions[a].firstTask != regions[b].firstTask)
                      return regions[a].firstTask < regions[b].firstTask;
                  return regions[a].firstOperand <
                      regions[b].firstOperand;
              });
    if (opts.layoutSeed != 0) {
        Rng rng(opts.layoutSeed);
        for (std::size_t i = order.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(rng.range(i));
            std::swap(order[i - 1], order[j]);
        }
    }

    std::uint64_t align = std::max<std::uint64_t>(opts.alignment, 1);
    AddressSpace space(opts.targetBase, align);
    std::vector<RelocatedRegion> placed(regions.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const Discovered &r = regions[order[rank]];
        RelocatedRegion p;
        p.sourceBase = r.base;
        p.targetBase = space.alloc(r.bytes);
        p.bytes = r.bytes;
        p.firstTouchTask = r.firstTask;
        placed[order[rank]] = p;
    }
    std::sort(placed.begin(), placed.end(),
              [](const RelocatedRegion &a, const RelocatedRegion &b) {
                  return a.sourceBase < b.sourceBase;
              });
    return placed;
}

} // namespace

const RelocatedRegion *
RelocationMap::find(std::uint64_t addr) const
{
    auto it = std::upper_bound(
        _regions.begin(), _regions.end(), addr,
        [](std::uint64_t a, const RelocatedRegion &r) {
            return a < r.sourceBase;
        });
    if (it == _regions.begin())
        return nullptr;
    const RelocatedRegion &r = *(it - 1);
    return addr < r.sourceBase + r.bytes ? &r : nullptr;
}

std::uint64_t
RelocationMap::relocate(std::uint64_t addr) const
{
    const RelocatedRegion *r = find(addr);
    if (!r) {
        fatal("address %llx is outside every relocated region",
              (unsigned long long)addr);
    }
    return r->targetBase + (addr - r->sourceBase);
}

TaskTrace
RelocationMap::apply(const TaskTrace &trace) const
{
    TaskTrace out = trace;
    for (TraceTask &task : out.tasks) {
        for (TraceOperand &op : task.operands) {
            if (isMemoryOperand(op.dir))
                op.addr = relocate(op.addr);
        }
    }
    return out;
}

RelocationMap
buildRelocationMap(const TaskTrace &trace, const RelocationOptions &opts,
                   const std::vector<MemRegion> &captured)
{
    std::vector<Touch> touches = collectTouches(trace);
    std::vector<Discovered> regions = captured.empty()
        ? regionsByInference(std::move(touches))
        : regionsFromRegistry(touches, captured);
    RelocationMap map;
    map._regions = placeRegions(regions, opts);
    return map;
}

RelocationMap
buildRelocationMapFromIds(
    const TaskTrace &trace, const std::vector<MemRegion> &captured,
    const std::vector<std::vector<std::int32_t>> &region_of,
    const RelocationOptions &opts)
{
    sortedRegistry(captured); // validate disjointness

    std::vector<Discovered> regions(captured.size());
    for (std::size_t i = 0; i < captured.size(); ++i) {
        regions[i].base = captured[i].base;
        regions[i].bytes = captured[i].bytes;
    }
    for (const Touch &t : collectTouches(trace)) {
        std::int32_t id = region_of[t.task][t.operand];
        if (id < 0) {
            fatal("operand [%llx,+%llu) of task %u was not resolved "
                  "to any captured region at spawn time",
                  (unsigned long long)t.base,
                  (unsigned long long)t.bytes, t.task);
        }
        regions[static_cast<std::size_t>(id)].touch(t);
    }
    std::erase_if(regions, [](const Discovered &r) {
        return r.firstTask == ~0u;
    });

    RelocationMap map;
    map._regions = placeRegions(regions, opts);
    return map;
}

TaskTrace
relocateTrace(const TaskTrace &trace, const RelocationOptions &opts,
              const std::vector<MemRegion> &captured)
{
    return buildRelocationMap(trace, opts, captured).apply(trace);
}

bool
sameAliasing(const TaskTrace &a, const TaskTrace &b)
{
    struct Interval
    {
        std::uint64_t base;
        Bytes bytes;
    };
    auto gather = [](const TaskTrace &trace) {
        std::vector<Interval> out;
        for (const TraceTask &task : trace.tasks)
            for (const TraceOperand &op : task.operands)
                if (isMemoryOperand(op.dir))
                    out.push_back(
                        Interval{op.addr, std::max<Bytes>(op.bytes, 1)});
        return out;
    };
    std::vector<Interval> ia = gather(a);
    std::vector<Interval> ib = gather(b);
    if (ia.size() != ib.size())
        return false;
    for (std::size_t i = 0; i < ia.size(); ++i)
        if (ia[i].bytes != ib[i].bytes)
            return false;

    auto overlaps = [](const Interval &x, const Interval &y) {
        return x.base < y.base + y.bytes && y.base < x.base + x.bytes;
    };
    for (std::size_t i = 0; i < ia.size(); ++i) {
        for (std::size_t j = i + 1; j < ia.size(); ++j) {
            if (overlaps(ia[i], ia[j]) != overlaps(ib[i], ib[j]))
                return false;
            if ((ia[i].base == ia[j].base) != (ib[i].base == ib[j].base))
                return false;
        }
    }
    return true;
}

} // namespace tss
