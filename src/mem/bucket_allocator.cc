#include "bucket_allocator.hh"

#include <bit>

namespace tss
{

namespace
{

Bytes
roundUpPow2(Bytes v)
{
    return std::bit_ceil(v);
}

} // namespace

BucketAllocator::BucketAllocator(std::uint64_t region_base,
                                 Bytes region_bytes, Bytes min_size,
                                 Bytes max_size, Bytes chunk_bytes)
    : regionBase(region_base), regionBytes(region_bytes),
      minSize(roundUpPow2(min_size)), maxSize(roundUpPow2(max_size)),
      chunkBytes(chunk_bytes)
{
    TSS_ASSERT(minSize <= maxSize, "bucket size range inverted");
    unsigned classes = 1;
    for (Bytes s = minSize; s < maxSize; s <<= 1)
        ++classes;
    buckets.resize(classes);
}

Bytes
BucketAllocator::bucketSizeFor(Bytes bytes) const
{
    Bytes size = roundUpPow2(bytes < minSize ? minSize : bytes);
    TSS_ASSERT(size <= maxSize,
               "rename buffer of %llu bytes exceeds the largest bucket",
               (unsigned long long)bytes);
    return size;
}

unsigned
BucketAllocator::bucketIndexFor(Bytes bytes) const
{
    Bytes size = bucketSizeFor(bytes);
    unsigned idx = 0;
    for (Bytes s = minSize; s < size; s <<= 1)
        ++idx;
    return idx;
}

std::optional<BucketAllocator::Allocation>
BucketAllocator::allocate(Bytes bytes)
{
    unsigned idx = bucketIndexFor(bytes);
    Bytes size = bucketSizeFor(bytes);
    auto &bucket = buckets[idx];

    Cycle cost = 1;
    if (bucket.empty()) {
        // Refill the bucket with a fresh chunk of the OS region.
        Bytes chunk = std::max(chunkBytes, size);
        if (regionUsed + chunk > regionBytes)
            return std::nullopt;
        std::uint64_t base = regionBase + regionUsed;
        regionUsed += chunk;
        for (Bytes off = 0; off + size <= chunk; off += size)
            bucket.push_back(base + off);
        ++refills;
        // Walking the in-memory list costs a main-memory round trip;
        // modeled as a constant charge on the unlucky allocation.
        cost += 100;
    }

    std::uint64_t addr = bucket.back();
    bucket.pop_back();
    ++live;
    return Allocation{addr, size, cost};
}

void
BucketAllocator::release(std::uint64_t address, Bytes bucket_size)
{
    unsigned idx = bucketIndexFor(bucket_size);
    buckets[idx].push_back(address);
    TSS_ASSERT(live > 0, "release with no live buffers");
    --live;
}

} // namespace tss
