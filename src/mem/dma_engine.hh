/**
 * @file
 * The external DMA engine that copies renamed operand buffers back to
 * their original object addresses when a final renamed version dies
 * (paper section IV, OVT description).
 */

#ifndef TSS_MEM_DMA_ENGINE_HH
#define TSS_MEM_DMA_ENGINE_HH

#include <deque>
#include <functional>

#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tss
{

/**
 * A single-channel DMA engine: transfers are serviced in order at a
 * fixed bandwidth with a fixed startup latency. Completion callbacks
 * fire in simulated time.
 */
class DmaEngine : public SimObject
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param bytes_per_cycle Sustained copy bandwidth.
     * @param startup Latency added to every transfer.
     */
    DmaEngine(std::string name, EventQueue &eq,
              double bytes_per_cycle = 16.0, Cycle startup = 200)
        : SimObject(std::move(name), eq),
          bandwidth(bytes_per_cycle), startupLatency(startup)
    {}

    /** Enqueue a copy of @p bytes; @p done fires at completion. */
    void
    transfer(Bytes bytes, Callback done = nullptr)
    {
        Cycle duration = startupLatency +
            static_cast<Cycle>(static_cast<double>(bytes) / bandwidth);
        Cycle start = std::max(curCycle(), channelFreeAt);
        channelFreeAt = start + duration;
        ++transfers;
        bytesCopied += bytes;
        if (done) {
            eventQueue().schedule(channelFreeAt,
                                  [cb = std::move(done)] { cb(); });
        }
    }

    std::uint64_t numTransfers() const { return transfers.value(); }
    std::uint64_t totalBytes() const { return bytesCopied.value(); }
    Cycle busyUntil() const { return channelFreeAt; }

  private:
    double bandwidth;
    Cycle startupLatency;
    Cycle channelFreeAt = 0;
    Counter transfers;
    Counter bytesCopied;
};

} // namespace tss

#endif // TSS_MEM_DMA_ENGINE_HH
