/**
 * @file
 * The external DMA engine that copies renamed operand buffers back to
 * their original object addresses when a final renamed version dies
 * (paper section IV, OVT description).
 */

#ifndef TSS_MEM_DMA_ENGINE_HH
#define TSS_MEM_DMA_ENGINE_HH

#include <deque>
#include <functional>

#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace tss
{

/**
 * A single-channel DMA engine: transfers are serviced in order at a
 * fixed bandwidth with a fixed startup latency. Completion callbacks
 * fire in simulated time.
 */
class DmaEngine : public SimObject
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param bytes_per_cycle Sustained copy bandwidth.
     * @param startup Latency added to every transfer.
     */
    DmaEngine(std::string name, EventQueue &eq,
              double bytes_per_cycle = 16.0, Cycle startup = 200)
        : SimObject(std::move(name), eq),
          bandwidth(bytes_per_cycle), startupLatency(startup)
    {}

    /**
     * Enqueue a copy of @p bytes; @p done fires at completion. The
     * channel is shared global state, so under the parallel engine
     * the reservation is deferred to the window barrier (like
     * Network::send); the completion callback is scheduled back onto
     * the requesting station's own queue shard.
     */
    void
    transfer(Bytes bytes, Callback done = nullptr)
    {
        if (execCtx.sink) {
            execCtx.sink->record(
                execCtx.nextKey(),
                [this, bytes, req = execCtx.when, q = execCtx.queue,
                 station = execCtx.station,
                 cb = std::move(done)]() mutable {
                    applyTransfer(bytes, std::move(cb), req, *q,
                                  station);
                });
        } else {
            applyTransfer(bytes, std::move(done), curCycle(),
                          eventQueue(), EventQueue::noStation);
        }
    }

    std::uint64_t numTransfers() const { return transfers.value(); }
    std::uint64_t totalBytes() const { return bytesCopied.value(); }
    Cycle busyUntil() const { return channelFreeAt; }

  private:
    void
    applyTransfer(Bytes bytes, Callback done, Cycle req,
                  EventQueue &q, std::int32_t station)
    {
        Cycle duration = startupLatency +
            static_cast<Cycle>(static_cast<double>(bytes) / bandwidth);
        Cycle start = std::max(req, channelFreeAt);
        channelFreeAt = start + duration;
        ++transfers;
        bytesCopied += bytes;
        if (done) {
            Cycle at = std::max(channelFreeAt, q.windowFloor());
            q.scheduleStation(at, station,
                              [cb = std::move(done)] { cb(); });
        }
    }

    double bandwidth;
    Cycle startupLatency;
    Cycle channelFreeAt = 0;
    Counter transfers;
    Counter bytesCopied;
};

} // namespace tss

#endif // TSS_MEM_DMA_ENGINE_HH
