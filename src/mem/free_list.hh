/**
 * @file
 * The TRS/OVT free-block list. Free blocks are chained in eDRAM, each
 * chain node storing 63 pointers to free blocks plus a next pointer;
 * the addresses of the first 64 free blocks are mirrored in a 128-byte
 * SRAM buffer so that a typical allocation takes a single cycle
 * (paper section IV-B.2).
 */

#ifndef TSS_MEM_FREE_LIST_HH
#define TSS_MEM_FREE_LIST_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/edram.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tss
{

/**
 * Free-list over a fixed pool of equal-size blocks, with the paper's
 * SRAM head buffer timing model.
 */
class BlockFreeList
{
  public:
    /** Entries of the SRAM head buffer (128 B of 2-byte indices). */
    static constexpr unsigned sramEntries = 64;

    /** Pointers per eDRAM chain node. */
    static constexpr unsigned chainFanout = 63;

    /**
     * @param num_blocks Pool size; block indices are [0, num_blocks).
     * @param edram The eDRAM whose latency chain refills charge (may
     *              be null for untimed use).
     */
    explicit BlockFreeList(std::uint32_t num_blocks, Edram *edram = nullptr);

    /** Outcome of a timed allocation. */
    struct Allocation
    {
        std::uint32_t block;
        Cycle cost;
    };

    /**
     * Allocate one block.
     * @return The block index and the cycle cost (1 cycle on an SRAM
     *         hit; plus an eDRAM read when the buffer must refill), or
     *         nullopt when the pool is exhausted.
     */
    std::optional<Allocation> allocate();

    /**
     * Return a block to the pool.
     * @return The cycle cost (1 cycle; an eDRAM write every
     *         chainFanout frees to spill a chain node).
     */
    Cycle release(std::uint32_t block);

    std::uint32_t numFree() const
    {
        return static_cast<std::uint32_t>(freeBlocks.size());
    }

    std::uint32_t numBlocks() const { return totalBlocks; }
    std::uint32_t numAllocated() const { return totalBlocks - numFree(); }

    /** Fraction of allocations satisfied in a single cycle. */
    double
    sramHitRate() const
    {
        auto total = sramHits.value() + sramMisses.value();
        return total == 0
            ? 1.0 : static_cast<double>(sramHits.value()) / total;
    }

  private:
    std::uint32_t totalBlocks;
    Edram *edram;

    /// All currently free block indices (LIFO: hot blocks reused).
    std::vector<std::uint32_t> freeBlocks;

    /// How many of the top-of-stack entries are mirrored in SRAM.
    unsigned sramCount;

    /// Frees since the last modeled chain-node spill.
    unsigned freesSinceSpill = 0;

    Counter sramHits;
    Counter sramMisses;
};

} // namespace tss

#endif // TSS_MEM_FREE_LIST_HH
