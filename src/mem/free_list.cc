#include "free_list.hh"

#include <algorithm>

namespace tss
{

BlockFreeList::BlockFreeList(std::uint32_t num_blocks, Edram *edram_ptr)
    : totalBlocks(num_blocks), edram(edram_ptr)
{
    freeBlocks.reserve(num_blocks);
    // Populate in reverse so that block 0 is allocated first.
    for (std::uint32_t i = num_blocks; i > 0; --i)
        freeBlocks.push_back(i - 1);
    sramCount = std::min<unsigned>(sramEntries, num_blocks);
}

std::optional<BlockFreeList::Allocation>
BlockFreeList::allocate()
{
    if (freeBlocks.empty())
        return std::nullopt;

    Cycle cost = 1;
    if (sramCount == 0) {
        // The SRAM buffer is empty: fetch the next chain node from
        // eDRAM before the allocation can proceed.
        ++sramMisses;
        if (edram)
            cost += edram->read();
        sramCount = std::min<std::size_t>(sramEntries, freeBlocks.size());
    } else {
        ++sramHits;
    }

    std::uint32_t block = freeBlocks.back();
    freeBlocks.pop_back();
    --sramCount;
    return Allocation{block, cost};
}

Cycle
BlockFreeList::release(std::uint32_t block)
{
    TSS_ASSERT(block < totalBlocks, "release of out-of-range block %u",
               block);
    freeBlocks.push_back(block);

    Cycle cost = 1;
    if (sramCount < sramEntries) {
        ++sramCount;
    } else if (++freesSinceSpill >= chainFanout) {
        // The SRAM buffer is full: spill one chain node (63 block
        // pointers plus the next pointer) to eDRAM.
        freesSinceSpill = 0;
        if (edram)
            cost += edram->write();
    }
    return cost;
}

} // namespace tss
