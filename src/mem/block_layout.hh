/**
 * @file
 * The TRS task-storage layout (paper Figure 11): fixed 128-byte eDRAM
 * blocks arranged like UNIX filesystem inodes. The main block stores
 * the task-global data and the first 4 operands; up to 3 indirect
 * blocks add 5 operands each, supporting at most 19 operands per task.
 */

#ifndef TSS_MEM_BLOCK_LAYOUT_HH
#define TSS_MEM_BLOCK_LAYOUT_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tss::layout
{

/** Size of one TRS storage block. */
constexpr unsigned blockBytes = 128;

/** Operand entries held by the main block. */
constexpr unsigned mainBlockOperands = 4;

/** Operand entries held by each indirect block. */
constexpr unsigned indirectBlockOperands = 5;

/** Maximum indirect blocks per task. */
constexpr unsigned maxIndirectBlocks = 3;

/** Maximum operands a task may carry. */
constexpr unsigned maxOperands =
    mainBlockOperands + maxIndirectBlocks * indirectBlockOperands;

/** Bytes of task-global data in the main block. */
constexpr unsigned taskGlobalBytes = 32;

/** Bytes per stored operand entry. */
constexpr unsigned operandEntryBytes = 24;

/**
 * Blocks needed for a task with @p operands operands (1 main block
 * plus however many indirect blocks the overflow operands require).
 */
constexpr unsigned
blocksForOperands(unsigned operands)
{
    if (operands <= mainBlockOperands)
        return 1;
    unsigned extra = operands - mainBlockOperands;
    unsigned indirect =
        (extra + indirectBlockOperands - 1) / indirectBlockOperands;
    return 1 + indirect;
}

/** Bytes actually allocated for @p operands operands. */
constexpr Bytes
allocatedBytes(unsigned operands)
{
    return Bytes(blocksForOperands(operands)) * blockBytes;
}

/**
 * Bytes of the allocation actually occupied by meta-data; the
 * difference versus allocatedBytes() is internal fragmentation (the
 * paper reports ~20% average waste).
 */
constexpr Bytes
usedBytes(unsigned operands)
{
    return taskGlobalBytes + Bytes(operands) * operandEntryBytes;
}

static_assert(maxOperands == 19, "paper layout supports 19 operands");
static_assert(taskGlobalBytes + mainBlockOperands * operandEntryBytes
              == blockBytes, "main block must be exactly one block");

} // namespace tss::layout

#endif // TSS_MEM_BLOCK_LAYOUT_HH
