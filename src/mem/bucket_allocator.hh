/**
 * @file
 * The OVT rename-buffer allocator (paper section IV-B.4): a fixed set
 * of power-of-2 buckets carved from an OS-assigned main-memory region.
 * Each bucket holds an in-memory linked list of fixed-size buffers and
 * is refilled with a fresh region chunk when it runs empty.
 */

#ifndef TSS_MEM_BUCKET_ALLOCATOR_HH
#define TSS_MEM_BUCKET_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tss
{

/**
 * Power-of-2 bucketed buffer allocator. Buffer addresses are
 * synthetic (offsets into the OS-assigned region); only meta-data is
 * simulated.
 */
class BucketAllocator
{
  public:
    /**
     * @param region_base Synthetic base address of the OS region.
     * @param region_bytes Region capacity.
     * @param min_size Smallest bucket size (rounded up to pow2).
     * @param max_size Largest supported buffer size.
     * @param chunk_bytes Bytes grabbed from the region per refill.
     */
    BucketAllocator(std::uint64_t region_base, Bytes region_bytes,
                    Bytes min_size = 256, Bytes max_size = 1u << 20,
                    Bytes chunk_bytes = 64 * 1024);

    /** Result of a timed allocation. */
    struct Allocation
    {
        std::uint64_t address;
        Bytes bucketSize;
        Cycle cost;
    };

    /**
     * Allocate a buffer of at least @p bytes.
     * @return Address/size/cost, or nullopt when the region is
     *         exhausted (the caller must stall and retry).
     */
    std::optional<Allocation> allocate(Bytes bytes);

    /** Return a buffer obtained from allocate(). */
    void release(std::uint64_t address, Bytes bucket_size);

    /** Bytes of the region not yet carved into buckets. */
    Bytes regionRemaining() const { return regionBytes - regionUsed; }

    /** Live (allocated, unreleased) buffer count. */
    std::uint64_t liveBuffers() const { return live; }

    /** Round @p bytes up to the bucket size that would serve it. */
    Bytes bucketSizeFor(Bytes bytes) const;

  private:
    unsigned bucketIndexFor(Bytes bytes) const;

    std::uint64_t regionBase;
    Bytes regionBytes;
    Bytes regionUsed = 0;
    Bytes minSize;
    Bytes maxSize;
    Bytes chunkBytes;

    /// One free-list (of synthetic addresses) per power-of-2 class.
    std::vector<std::vector<std::uint64_t>> buckets;

    std::uint64_t live = 0;
    Counter refills;
};

} // namespace tss

#endif // TSS_MEM_BUCKET_ALLOCATOR_HH
