/**
 * @file
 * The on-chip eDRAM macro model. ORTs, OVTs and TRSs store their
 * operand/task meta-data in private eDRAM blocks; the paper charges a
 * flat 22-cycle access latency on top of module processing time.
 */

#ifndef TSS_MEM_EDRAM_HH
#define TSS_MEM_EDRAM_HH

#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace tss
{

/**
 * A private eDRAM block: a capacity budget plus an access-latency
 * charge. The actual contents live in the owning module's C++ state;
 * the model accounts for time and space only (the paper's modules
 * store meta-data, not data).
 */
class Edram
{
  public:
    /** The paper's eDRAM access time for the task pipeline. */
    static constexpr Cycle defaultLatency = 22;

    Edram(Bytes capacity, Cycle latency = defaultLatency)
        : _capacity(capacity), _latency(latency)
    {}

    Bytes capacity() const { return _capacity; }
    Cycle latency() const { return _latency; }

    /** Charge @p n read accesses; returns the added latency. */
    Cycle
    read(unsigned n = 1)
    {
        reads += n;
        return _latency * n;
    }

    /** Charge @p n write accesses; returns the added latency. */
    Cycle
    write(unsigned n = 1)
    {
        writes += n;
        return _latency * n;
    }

    std::uint64_t numReads() const { return reads.value(); }
    std::uint64_t numWrites() const { return writes.value(); }

  private:
    Bytes _capacity;
    Cycle _latency;
    Counter reads;
    Counter writes;
};

} // namespace tss

#endif // TSS_MEM_EDRAM_HH
