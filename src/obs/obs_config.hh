/**
 * @file
 * Observability knobs shared by the config surface (core/config.hh),
 * the CLI (driver/run_options), and the tracer itself. Kept light —
 * this header is included by PipelineConfig and must not pull in the
 * tracer implementation.
 */

#ifndef TSS_OBS_OBS_CONFIG_HH
#define TSS_OBS_OBS_CONFIG_HH

#include <cstdint>
#include <string>

namespace tss
{
namespace obs
{

/**
 * How much trace the flight recorder retains.
 *
 * - Off: no Tracer is constructed; the emit fast path is a single
 *   thread-local nullptr test (and compiles out entirely under
 *   TSS_OBS_DISABLE).
 * - Tail: the default. Records flow through the per-shard buffers but
 *   only a bounded tail (traceTailRecords) is retained, so a wedged
 *   run can attach its last moments to the LivenessReport at zero
 *   configuration cost.
 * - Full: every record is retained for export (--trace-out or the
 *   serve Trace message).
 */
enum class TraceMode : std::uint8_t
{
    Off,
    Tail,
    Full,
};

/** Record-category bits for --trace-filter. */
namespace cat
{
constexpr std::uint32_t task = 1u << 0;     ///< task lifecycle flow
constexpr std::uint32_t version = 1u << 1;  ///< OVT version slots
constexpr std::uint32_t noc = 1u << 2;      ///< sends/deliveries/lanes
constexpr std::uint32_t engine = 1u << 3;   ///< window barriers
constexpr std::uint32_t serve = 1u << 4;    ///< serve-pipeline stages
constexpr std::uint32_t all = task | version | noc | engine | serve;
} // namespace cat

/**
 * Parse a comma-separated category list ("task,noc"); "all" or an
 * empty spec selects every category. Unknown names are ignored (an
 * all-unknown spec yields 0, i.e. trace nothing).
 */
std::uint32_t parseTraceFilter(const std::string &spec);

/** Format a mask back to the canonical comma list ("all" when full). */
std::string formatTraceFilter(std::uint32_t mask);

/** Parse off|tail|full (defaults to Tail on unknown input). */
TraceMode parseTraceMode(const std::string &name);

/** Canonical name of a mode. */
const char *traceModeName(TraceMode mode);

} // namespace obs
} // namespace tss

#endif // TSS_OBS_OBS_CONFIG_HH
