#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace tss
{
namespace obs
{

std::uint64_t
Snapshot::counter(const std::string &name, std::uint64_t fallback) const
{
    auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
}

double
Snapshot::gauge(const std::string &name, double fallback) const
{
    auto it = gauges.find(name);
    return it == gauges.end() ? fallback : it->second;
}

bool
Snapshot::hasCounter(const std::string &name) const
{
    return counters.count(name) != 0;
}

std::string
formatMetricValue(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) < 9007199254740992.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

void
Snapshot::writeJson(std::ostream &os, int indent) const
{
    std::string pad(static_cast<std::size_t>(indent), ' ');
    os << pad << "{\n";
    os << pad << "  \"counters\": {";
    bool first = true;
    for (const auto &kv : counters) {
        os << (first ? "\n" : ",\n") << pad << "    \"" << kv.first
           << "\": " << kv.second;
        first = false;
    }
    os << (first ? "" : "\n" + pad + "  ") << "},\n";

    os << pad << "  \"gauges\": {";
    first = true;
    for (const auto &kv : gauges) {
        os << (first ? "\n" : ",\n") << pad << "    \"" << kv.first
           << "\": " << formatMetricValue(kv.second);
        first = false;
    }
    os << (first ? "" : "\n" + pad + "  ") << "},\n";

    os << pad << "  \"histograms\": {";
    first = true;
    for (const auto &kv : histograms) {
        os << (first ? "\n" : ",\n") << pad << "    \"" << kv.first
           << "\": {\"lower_bounds\": [";
        const HistogramSnapshot &h = kv.second;
        for (std::size_t i = 0; i < h.lowerBounds.size(); ++i)
            os << (i ? ", " : "") << h.lowerBounds[i];
        os << "], \"counts\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i)
            os << (i ? ", " : "") << h.counts[i];
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n" + pad + "  ") << "}\n";
    os << pad << "}";
}

std::string
Snapshot::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    os << "\n";
    return os.str();
}

void
Registry::addCounter(const std::string &name, CounterFn fn)
{
    counters[name] = std::move(fn);
}

void
Registry::addGauge(const std::string &name, GaugeFn fn)
{
    gauges[name] = std::move(fn);
}

void
Registry::addHistogram(const std::string &name, HistogramFn fn)
{
    histograms[name] = std::move(fn);
}

std::size_t
Registry::size() const
{
    return counters.size() + gauges.size() + histograms.size();
}

Snapshot
Registry::snapshot() const
{
    Snapshot s;
    for (const auto &kv : counters)
        s.counters[kv.first] = kv.second();
    for (const auto &kv : gauges)
        s.gauges[kv.first] = kv.second();
    for (const auto &kv : histograms)
        s.histograms[kv.first] = kv.second();
    return s;
}

} // namespace obs
} // namespace tss
