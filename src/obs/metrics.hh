/**
 * @file
 * Unified metrics registry. Modules *bind* named metrics once —
 * counters, gauges, histograms — as provider callables over their
 * existing stats fields; nothing at a call site changes and the hot
 * path pays nothing. snapshot() polls every provider into an
 * immutable, name-sorted Snapshot with deterministic JSON export.
 *
 * Naming scheme (dot-separated, lowercase):
 *   frontend.<stat>            pipeline-wide decode statistics
 *   slice.<n>.<stat>           per directory-slice (ORT/OVT)
 *   module.<name>.<stat>       per SimObject station
 *   noc.<stat> / noc.link.*    network aggregate + per-link
 *   engine.<stat>              parallel-engine counters
 *   scheduler.<stat>, core.<n>.<stat>, serve.<tenant>.<stat>
 */

#ifndef TSS_OBS_METRICS_HH
#define TSS_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace tss
{
namespace obs
{

/**
 * A polled histogram: counts[i] holds samples in
 * [lowerBounds[i], lowerBounds[i + 1]), the last bucket open-ended.
 * Fixes the historical NoC utilization dump, which printed counts
 * with no bounds at all.
 */
struct HistogramSnapshot
{
    std::vector<std::uint64_t> lowerBounds;
    std::vector<std::uint64_t> counts;

    std::uint64_t
    totalCount() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t c : counts)
            n += c;
        return n;
    }
};

/** Immutable poll of a Registry; name-sorted, JSON-exportable. */
struct Snapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    std::uint64_t counter(const std::string &name,
                          std::uint64_t fallback = 0) const;
    double gauge(const std::string &name, double fallback = 0.0) const;
    bool hasCounter(const std::string &name) const;

    /**
     * Deterministic JSON: three name-sorted sections. @p indent is
     * the number of leading spaces on every emitted line, so the
     * object nests cleanly inside larger reports (tss-serve).
     */
    void writeJson(std::ostream &os, int indent = 0) const;
    std::string toJson() const;
};

/**
 * The registry: a named set of metric providers. Registration order
 * is irrelevant (snapshots sort by name); duplicate names keep the
 * latest binding.
 */
class Registry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;
    using HistogramFn = std::function<HistogramSnapshot()>;

    void addCounter(const std::string &name, CounterFn fn);
    void addGauge(const std::string &name, GaugeFn fn);
    void addHistogram(const std::string &name, HistogramFn fn);

    /** Bind a counter to a stats field by reference. */
    template <typename T>
    void
    bindCounter(const std::string &name, const T &field)
    {
        addCounter(name, [&field]() {
            return static_cast<std::uint64_t>(field);
        });
    }

    std::size_t size() const;
    Snapshot snapshot() const;

  private:
    std::map<std::string, CounterFn> counters;
    std::map<std::string, GaugeFn> gauges;
    std::map<std::string, HistogramFn> histograms;
};

/** JSON-format a double: integral values print as integers. */
std::string formatMetricValue(double v);

} // namespace obs
} // namespace tss

#endif // TSS_OBS_METRICS_HH
