#include "obs/trace.hh"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

namespace tss
{
namespace obs
{

thread_local TraceBuf *traceBuf = nullptr;

std::uint32_t
categoryOf(TraceEvent type)
{
    switch (type) {
      case TraceEvent::TaskSubmit:
      case TraceEvent::TaskAlloc:
      case TraceEvent::TaskDecodeDone:
      case TraceEvent::TaskReady:
      case TraceEvent::TaskDispatch:
      case TraceEvent::TaskStart:
      case TraceEvent::TaskRetire:
      case TraceEvent::OperandTicketPark:
      case TraceEvent::OperandSlotPark:
      case TraceEvent::OperandUnpark:
        return cat::task;
      case TraceEvent::VersionCreate:
      case TraceEvent::VersionReserved:
      case TraceEvent::VersionDead:
        return cat::version;
      case TraceEvent::NocSend:
      case TraceEvent::NocDeliver:
      case TraceEvent::NocLaneWait:
        return cat::noc;
      case TraceEvent::WindowBarrier:
        return cat::engine;
      case TraceEvent::ServeEnqueue:
      case TraceEvent::ServeDequeue:
        return cat::serve;
    }
    return cat::all;
}

const char *
traceEventName(TraceEvent type)
{
    switch (type) {
      case TraceEvent::TaskSubmit: return "task.submit";
      case TraceEvent::TaskAlloc: return "task.alloc";
      case TraceEvent::TaskDecodeDone: return "task.decode";
      case TraceEvent::TaskReady: return "task.ready";
      case TraceEvent::TaskDispatch: return "task.dispatch";
      case TraceEvent::TaskStart: return "task.start";
      case TraceEvent::TaskRetire: return "task.retire";
      case TraceEvent::OperandTicketPark: return "ort.park.ticket";
      case TraceEvent::OperandSlotPark: return "ort.park.slot";
      case TraceEvent::OperandUnpark: return "ort.unpark";
      case TraceEvent::VersionCreate: return "ovt.create";
      case TraceEvent::VersionReserved: return "ovt.reserved";
      case TraceEvent::VersionDead: return "ovt.dead";
      case TraceEvent::NocSend: return "noc.send";
      case TraceEvent::NocDeliver: return "noc.deliver";
      case TraceEvent::NocLaneWait: return "noc.lanewait";
      case TraceEvent::WindowBarrier: return "engine.window";
      case TraceEvent::ServeEnqueue: return "serve.enqueue";
      case TraceEvent::ServeDequeue: return "serve.dequeue";
    }
    return "unknown";
}

namespace
{

const char *
categoryName(TraceEvent type)
{
    switch (categoryOf(type)) {
      case cat::task: return "task";
      case cat::version: return "version";
      case cat::noc: return "noc";
      case cat::engine: return "engine";
      case cat::serve: return "serve";
    }
    return "other";
}

struct NamedCat
{
    const char *name;
    std::uint32_t bit;
};

constexpr NamedCat namedCats[] = {
    {"task", cat::task},   {"version", cat::version},
    {"noc", cat::noc},     {"engine", cat::engine},
    {"serve", cat::serve},
};

} // namespace

std::uint32_t
parseTraceFilter(const std::string &spec)
{
    if (spec.empty() || spec == "all")
        return cat::all;
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        if (name == "all")
            mask |= cat::all;
        for (const NamedCat &c : namedCats)
            if (name == c.name)
                mask |= c.bit;
        pos = comma + 1;
    }
    return mask;
}

std::string
formatTraceFilter(std::uint32_t mask)
{
    if ((mask & cat::all) == cat::all)
        return "all";
    std::string out;
    for (const NamedCat &c : namedCats) {
        if (!(mask & c.bit))
            continue;
        if (!out.empty())
            out += ',';
        out += c.name;
    }
    return out;
}

TraceMode
parseTraceMode(const std::string &name)
{
    if (name == "off")
        return TraceMode::Off;
    if (name == "full")
        return TraceMode::Full;
    return TraceMode::Tail;
}

const char *
traceModeName(TraceMode mode)
{
    switch (mode) {
      case TraceMode::Off: return "off";
      case TraceMode::Tail: return "tail";
      case TraceMode::Full: return "full";
    }
    return "tail";
}

std::vector<TraceRecord>
TraceBuf::take()
{
    return std::exchange(records, {});
}

std::vector<TraceRecord>
TraceBuf::ringTail() const
{
    std::vector<TraceRecord> out;
    if (ring.empty() || ringCount == 0)
        return out;
    std::uint64_t kept = std::min<std::uint64_t>(ringCount, ring.size());
    out.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t i = ringCount - kept; i < ringCount; ++i)
        out.push_back(ring[i & ringMask]);
    return out;
}

namespace
{

/** The global record order: the DeferKey-style (when, station, seq,
 *  sub) key, unique across shards (a station lives on one shard). */
bool
keyLess(const TraceRecord &x, const TraceRecord &y)
{
    if (x.when != y.when)
        return x.when < y.when;
    if (x.station != y.station)
        return x.station < y.station;
    if (x.seq != y.seq)
        return x.seq < y.seq;
    return x.sub < y.sub;
}

} // namespace

Tracer::Tracer(TraceMode mode, std::uint32_t filter_mask,
               unsigned num_shards, std::size_t tail_records)
    : _mode(mode), mask(filter_mask), barrier(filter_mask),
      tailCap(tail_records == 0 ? 1 : tail_records)
{
    shardBufs.reserve(num_shards);
    for (unsigned i = 0; i < num_shards; ++i)
        shardBufs.emplace_back(filter_mask);
    if (_mode == TraceMode::Tail) {
        // Bounded tail: preallocated rings, no per-window drain.
        for (TraceBuf &buf : shardBufs)
            buf.setRing(tailCap);
        barrier.setRing(tailCap);
    }
}

void
Tracer::beginBarrier()
{
    traceBuf = &barrier;
}

void
Tracer::endBarrier()
{
    traceBuf = nullptr;
}

void
Tracer::recordWindowBarrier(Cycle window_end, std::size_t applied)
{
    barrier.emit(TraceEvent::WindowBarrier, window_end,
                 static_cast<std::uint32_t>(applied), window_end);
}

void
Tracer::drainWindow()
{
    if (_mode == TraceMode::Tail)
        return; // rings self-retain; end-sorted once in tailJson()

    std::vector<TraceRecord> window;
    for (TraceBuf &buf : shardBufs) {
        std::vector<TraceRecord> recs = buf.take();
        window.insert(window.end(), recs.begin(), recs.end());
    }
    std::vector<TraceRecord> brecs = barrier.take();
    window.insert(window.end(), brecs.begin(), brecs.end());
    if (window.empty())
        return;

    std::stable_sort(window.begin(), window.end(), keyLess);

    total += window.size();
    for (const TraceRecord &r : window) {
        tail.push_back(r);
        if (tail.size() > tailCap)
            tail.pop_front();
    }
    if (_mode == TraceMode::Full)
        full.insert(full.end(), window.begin(), window.end());
}

std::uint64_t
Tracer::totalRecords() const
{
    if (_mode != TraceMode::Tail)
        return total;
    std::uint64_t n = barrier.emitted();
    for (const TraceBuf &buf : shardBufs)
        n += buf.emitted();
    return n;
}

void
Tracer::setTrackName(int pid, std::int64_t tid, std::string name)
{
    tracks.push_back(TrackName{pid, tid, std::move(name)});
}

namespace
{

/** (pid, tid) of a record's Chrome track. */
void
recordTrack(const TraceRecord &r, int &pid, std::int64_t &tid)
{
    if (r.station != TraceBuf::barrierStation) {
        pid = 0;
        tid = r.station;
        return;
    }
    switch (r.type) {
      case TraceEvent::NocSend:
        pid = 0;
        tid = static_cast<std::int64_t>(r.a >> 16);
        return;
      case TraceEvent::NocDeliver:
        pid = 0;
        tid = static_cast<std::int64_t>(r.a & 0xffff);
        return;
      case TraceEvent::NocLaneWait:
        pid = 1;
        tid = 1;
        return;
      default:
        pid = 1;
        tid = 0;
        return;
    }
}

} // namespace

void
Tracer::writeChrome(std::ostream &os,
                    const std::vector<TraceRecord> &records) const
{
    os << "{\"traceEvents\": [";
    bool first = true;
    auto sep = [&os, &first]() {
        os << (first ? "\n" : ",\n");
        first = false;
    };

    std::vector<TrackName> named = tracks;
    std::stable_sort(named.begin(), named.end(),
                     [](const TrackName &x, const TrackName &y) {
                         if (x.pid != y.pid)
                             return x.pid < y.pid;
                         return x.tid < y.tid;
                     });
    for (const TrackName &t : named) {
        sep();
        os << "{\"ph\": \"M\", \"pid\": " << t.pid << ", \"tid\": "
           << t.tid << ", \"name\": \"thread_name\", \"args\": "
           << "{\"name\": \"" << t.name << "\"}}";
    }

    for (const TraceRecord &r : records) {
        int pid = 0;
        std::int64_t tid = 0;
        recordTrack(r, pid, tid);
        const char *name = traceEventName(r.type);
        const char *cname = categoryName(r.type);

        sep();
        os << "{\"name\": \"" << name << "\", \"cat\": \"" << cname
           << "\", \"ph\": \"X\", \"ts\": " << r.when
           << ", \"dur\": 1, \"pid\": " << pid << ", \"tid\": " << tid
           << ", \"args\": {\"a\": " << r.a << ", \"b\": " << r.b
           << "}}";

        // The task lifecycle is stitched into one Perfetto flow per
        // task (id = registry trace index), bound to the dur-1 slices
        // emitted above.
        const char *flow = nullptr;
        switch (r.type) {
          case TraceEvent::TaskSubmit:
            flow = "s";
            break;
          case TraceEvent::TaskAlloc:
          case TraceEvent::TaskDecodeDone:
          case TraceEvent::TaskReady:
          case TraceEvent::TaskDispatch:
          case TraceEvent::TaskStart:
            flow = "t";
            break;
          case TraceEvent::TaskRetire:
            flow = "f";
            break;
          default:
            break;
        }
        if (flow) {
            sep();
            os << "{\"name\": \"task\", \"cat\": \"task\", \"ph\": \""
               << flow << "\", ";
            if (r.type == TraceEvent::TaskRetire)
                os << "\"bp\": \"e\", ";
            os << "\"id\": " << r.a << ", \"ts\": " << r.when
               << ", \"pid\": " << pid << ", \"tid\": " << tid << "}";
        }

        // Retirement carries the start cycle: recover the actual
        // execution interval as a real-duration slice.
        if (r.type == TraceEvent::TaskRetire && r.when > r.b) {
            sep();
            os << "{\"name\": \"task.run\", \"cat\": \"task\", "
               << "\"ph\": \"X\", \"ts\": " << r.b << ", \"dur\": "
               << (r.when - r.b) << ", \"pid\": " << pid
               << ", \"tid\": " << tid << ", \"args\": {\"a\": "
               << r.a << "}}";
        }
    }
    os << "\n]}\n";
}

void
Tracer::exportChromeJson(std::ostream &os) const
{
    writeChrome(os, full);
}

std::string
Tracer::chromeJson() const
{
    std::ostringstream os;
    exportChromeJson(os);
    return os.str();
}

std::string
Tracer::tailJson() const
{
    std::vector<TraceRecord> records;
    if (_mode == TraceMode::Tail) {
        for (const TraceBuf &buf : shardBufs) {
            std::vector<TraceRecord> recs = buf.ringTail();
            records.insert(records.end(), recs.begin(), recs.end());
        }
        std::vector<TraceRecord> brecs = barrier.ringTail();
        records.insert(records.end(), brecs.begin(), brecs.end());
        std::stable_sort(records.begin(), records.end(), keyLess);
        if (records.size() > tailCap)
            records.erase(records.begin(),
                          records.end() -
                              static_cast<std::ptrdiff_t>(tailCap));
    } else {
        records.assign(tail.begin(), tail.end());
    }
    std::ostringstream os;
    writeChrome(os, records);
    return os.str();
}

void
appendChromeEvents(std::string &doc, const std::string &events)
{
    if (events.empty())
        return;
    static const char suffix[] = "\n]}\n";
    const std::size_t slen = sizeof(suffix) - 1;
    if (doc.size() < slen ||
        doc.compare(doc.size() - slen, slen, suffix) != 0) {
        // Not one of our documents; refuse to guess at its structure.
        return;
    }
    bool wasEmpty = doc.size() >= slen + 1 &&
        doc[doc.size() - slen - 1] == '[';
    doc.resize(doc.size() - slen);
    doc += wasEmpty ? "\n" : ",\n";
    doc += events;
    doc += suffix;
}

std::string
serveStageSlice(const std::string &name, int stage, std::int64_t ts_us,
                std::int64_t dur_us, std::uint64_t job_id)
{
    std::ostringstream os;
    os << "{\"name\": \"" << name << "\", \"cat\": \"serve\", "
       << "\"ph\": \"X\", \"ts\": " << ts_us << ", \"dur\": "
       << (dur_us < 1 ? 1 : dur_us) << ", \"pid\": 2, \"tid\": "
       << stage << ", \"args\": {\"job\": " << job_id << "}}";
    return os.str();
}

} // namespace obs
} // namespace tss
