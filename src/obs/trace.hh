/**
 * @file
 * Flight-recorder cycle tracer. Every instrumented module calls the
 * free function obs::trace() — a thread-local nullptr test when
 * tracing is off — which appends a compact cycle-stamped record to
 * the buffer of the event-queue shard currently draining (or to the
 * barrier buffer while the engine applies deferred operations).
 *
 * Determinism: each record carries the DeferKey-style sort key of the
 * event that emitted it — (cycle, station, per-station sequence) from
 * the thread-local ExecContext plus a per-event sub-index — and
 * barrier-side records take (cycle, sentinel station, barrier
 * sequence). In Full mode, at every window barrier the Tracer
 * concatenates the shard buffers in shard-index order plus the
 * barrier buffer and stable-sorts by that key. In Tail mode the
 * buffers are preallocated power-of-two rings — one masked store per
 * record, nothing per window — and the export key-sorts the
 * surviving per-shard tails once at the end. Both the per-shard
 * contents and the barrier apply order are pure functions of
 * simulated state, so the drained record stream — and the exported
 * Chrome trace-event JSON — is byte-identical for any --sim-threads.
 *
 * The exporter emits integers only (cycle timestamps, packed ids), so
 * the bytes are also host-independent.
 */

#ifndef TSS_OBS_TRACE_HH
#define TSS_OBS_TRACE_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "obs/obs_config.hh"
#include "sim/exec_context.hh"
#include "sim/types.hh"

namespace tss
{
namespace obs
{

/** What happened. Grouped by filter category (see categoryOf). */
enum class TraceEvent : std::uint8_t
{
    TaskSubmit,         ///< a = task trace index, b = generating thread
    TaskAlloc,          ///< a = task trace index, b = TRS node
    TaskDecodeDone,     ///< a = task trace index, b = operand count
    TaskReady,          ///< a = task trace index
    TaskDispatch,       ///< a = task trace index, b = core index
    TaskStart,          ///< a = task trace index, b = core index
    TaskRetire,         ///< a = task trace index, b = start cycle
    OperandTicketPark,  ///< a = slice index, b = object address
    OperandSlotPark,    ///< a = slice index, b = object address
    OperandUnpark,      ///< a = slice index, b = object address
    VersionCreate,      ///< a = slice index, b = version slot
    VersionReserved,    ///< a = slice index, b = version slot
    VersionDead,        ///< a = slice index, b = version slot
    NocSend,            ///< a = (src << 16) | dst, b = payload bytes
    NocDeliver,         ///< a = (src << 16) | dst, b = latency
    NocLaneWait,        ///< a = 0 (per-link, link anonymous), b = wait
    WindowBarrier,      ///< a = deferred ops applied, b = window end
    ServeEnqueue,       ///< a = stage index, b = job id
    ServeDequeue,       ///< a = stage index, b = job id
};

/** Filter-category bit of an event type. */
std::uint32_t categoryOf(TraceEvent type);

/** Short dotted name used in the Chrome export ("task.submit"...). */
const char *traceEventName(TraceEvent type);

/**
 * One flight-recorder record: the semantic timestamp @p when doubles
 * as the primary sort-key component; (station, seq, sub) complete the
 * globally unique key (see file comment). 40 bytes.
 */
struct TraceRecord
{
    Cycle when = 0;
    std::uint64_t seq = 0;
    std::uint64_t b = 0;
    std::uint32_t a = 0;
    std::int32_t station = 0;
    std::uint32_t sub = 0;
    TraceEvent type = TraceEvent::TaskSubmit;
};

/**
 * Per-shard (or barrier-side) record buffer. Only the draining thread
 * of the owning shard appends; the Tracer's drainWindow() — on the
 * barrier thread, with all shards quiescent — moves records out.
 *
 * Two storage modes. Growable (Full-mode default): records append to
 * a vector that drainWindow() takes every window. Ring (Tail mode,
 * via setRing): records overwrite a preallocated power-of-two ring —
 * one masked store per record, no allocation, no per-window drain —
 * and the Tracer end-sorts the surviving tails once at export. Both
 * retain identical per-record content, so the tail export stays a
 * pure function of simulated state.
 */
class TraceBuf
{
  public:
    /** Sentinel station of records emitted outside any event. */
    static constexpr std::int32_t barrierStation =
        std::numeric_limits<std::int32_t>::max();

    explicit TraceBuf(std::uint32_t mask = cat::all) : mask(mask) {}

    /**
     * Switch to ring storage keeping the last >= @p cap records
     * (rounded up to a power of two). Call before any emit.
     */
    void
    setRing(std::size_t cap)
    {
        std::size_t n = 1;
        while (n < cap)
            n <<= 1;
        ring.assign(n, TraceRecord{});
        ringMask = n - 1;
    }

    /** Records appended (post-filter), including overwritten ones. */
    std::uint64_t emitted() const { return ringCount; }

    /**
     * The ring's surviving records in emission order (oldest first).
     * Empty for growable buffers.
     */
    std::vector<TraceRecord> ringTail() const;

    /**
     * Append a record. Keyed by the executing event's ExecContext
     * when one is live (with a per-event sub-index that is *separate*
     * from ExecContext::opIndex, so deferred-operation keys are
     * untouched), else by (when, barrierStation, local sequence).
     */
    void
    emit(TraceEvent type, Cycle when, std::uint32_t a,
         std::uint64_t b = 0)
    {
        if (!(categoryOf(type) & mask))
            return;
        TraceRecord r;
        r.when = when;
        r.b = b;
        r.a = a;
        r.type = type;
        if (execCtx.queue) {
            if (execCtx.when != keyWhen ||
                execCtx.station != keyStation ||
                execCtx.seq != keySeq) {
                keyWhen = execCtx.when;
                keyStation = execCtx.station;
                keySeq = execCtx.seq;
                nextSub = 0;
            }
            r.station = execCtx.station;
            r.seq = execCtx.seq;
            r.sub = nextSub++;
        } else {
            r.station = barrierStation;
            r.seq = barrierSeq++;
            r.sub = 0;
        }
        if (ring.empty())
            records.push_back(r);
        else
            ring[ringCount++ & ringMask] = r;
    }

    bool empty() const { return records.empty() && ringCount == 0; }
    std::size_t size() const { return records.size(); }

    /** Move the buffered records out (growable mode, barrier side). */
    std::vector<TraceRecord> take();

  private:
    std::vector<TraceRecord> records;
    std::vector<TraceRecord> ring; ///< non-empty iff ring mode
    std::uint64_t ringCount = 0;   ///< appends since setRing
    std::uint64_t ringMask = 0;
    std::uint32_t mask;
    Cycle keyWhen = invalidCycle;
    std::int32_t keyStation = -1;
    std::uint64_t keySeq = 0;
    std::uint32_t nextSub = 0;
    std::uint64_t barrierSeq = 0;
};

/**
 * The thread-local emit target. Null outside a traced region: set by
 * EventQueue::step() for the duration of one event (only when the
 * queue has a trace buffer wired) and by Tracer::beginBarrier()
 * /endBarrier() around the engine's deferred-op apply phase. Never
 * left dangling across runs — independent Systems simulating
 * concurrently (tss-serve) must not observe each other's buffers.
 */
extern thread_local TraceBuf *traceBuf;

/**
 * Record a trace event. The fast path when tracing is off is one
 * thread-local load and compare; under TSS_OBS_DISABLE the call
 * compiles away entirely.
 */
inline void
trace(TraceEvent type, Cycle when, std::uint32_t a, std::uint64_t b = 0)
{
#ifndef TSS_OBS_DISABLE
    if (TraceBuf *buf = traceBuf)
        buf->emit(type, when, a, b);
#else
    (void)type;
    (void)when;
    (void)a;
    (void)b;
#endif
}

/**
 * The flight recorder of one System run: owns one TraceBuf per event
 * shard plus a barrier buffer, drains them deterministically at every
 * window barrier, and exports Chrome trace-event JSON.
 */
class Tracer
{
  public:
    Tracer(TraceMode mode, std::uint32_t filter_mask,
           unsigned num_shards, std::size_t tail_records);

    TraceMode mode() const { return _mode; }
    unsigned numShards() const
    {
        return static_cast<unsigned>(shardBufs.size());
    }

    /** Buffer to wire into shard @p i's EventQueue. */
    TraceBuf *shardBuf(unsigned i) { return &shardBufs[i]; }

    /** Route emissions to the barrier buffer (engine apply phase). */
    void beginBarrier();
    /** Stop routing; the thread-local target returns to null. */
    void endBarrier();

    /** Emit the engine's per-window barrier record (engine category). */
    void recordWindowBarrier(Cycle window_end, std::size_t applied);

    /**
     * Merge this window's shard + barrier buffers into the retained
     * log: concatenate in shard-index order (barrier buffer last) and
     * stable-sort by (when, station, seq, sub). Deterministic for any
     * host thread count by construction. In Tail mode this is a no-op
     * — the ring buffers retain their own tails and tailJson()
     * end-sorts them once, so the per-window concat + sort never runs
     * on the hot path.
     */
    void drainWindow();

    /** Name a track for the exporter's thread_name metadata. */
    void setTrackName(int pid, std::int64_t tid, std::string name);

    /** Records emitted (post-filter), including ring overwrites. */
    std::uint64_t totalRecords() const;
    const std::vector<TraceRecord> &log() const { return full; }

    /** Full Chrome trace-event JSON document (Full mode). */
    void exportChromeJson(std::ostream &os) const;
    std::string chromeJson() const;

    /**
     * Bounded-tail Chrome JSON — what LivenessReport attaches. Tail
     * mode: the union of the per-shard rings (each a deterministic
     * per-shard suffix), key-sorted, trimmed to the last tailCap
     * records. Full mode: the last tailCap of the drained stream.
     */
    std::string tailJson() const;

  private:
    void writeChrome(std::ostream &os,
                     const std::vector<TraceRecord> &records) const;

    struct TrackName
    {
        int pid;
        std::int64_t tid;
        std::string name;
    };

    TraceMode _mode;
    std::uint32_t mask;
    std::vector<TraceBuf> shardBufs;
    TraceBuf barrier;
    std::vector<TraceRecord> full;   ///< Full mode retention
    std::deque<TraceRecord> tail;    ///< bounded always-on tail
    std::size_t tailCap;
    std::uint64_t total = 0;
    std::vector<TrackName> tracks;
};

/**
 * Splice pre-formatted Chrome event objects (comma-separated, no
 * trailing comma) into an exported document, before its closing
 * "\n]}\n". Used by tss-serve to add wall-clock stage-dwell slices
 * (pid 2) to a job's simulation trace.
 */
void appendChromeEvents(std::string &doc, const std::string &events);

/** One serve-stage Chrome slice ("X", pid 2) for appendChromeEvents. */
std::string serveStageSlice(const std::string &name, int stage,
                            std::int64_t ts_us, std::int64_t dur_us,
                            std::uint64_t job_id);

} // namespace obs
} // namespace tss

#endif // TSS_OBS_TRACE_HH
