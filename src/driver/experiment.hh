/**
 * @file
 * Shared experiment entry points used by the bench harness, examples
 * and tests: run a trace through the hardware pipeline or the
 * software runtime and collect uniform results.
 */

#ifndef TSS_DRIVER_EXPERIMENT_HH
#define TSS_DRIVER_EXPERIMENT_HH

#include <string>

#include "core/config.hh"
#include "core/system.hh"
#include "driver/cli.hh"
#include "driver/run_options.hh"
#include "swruntime/sw_runtime.hh"
#include "trace/relocate.hh"
#include "trace/task_trace.hh"
#include "workload/starss_programs.hh"
#include "workload/workload.hh"

namespace tss
{

/** Run @p trace through a freshly built task superscalar system. */
RunResult runHardware(const PipelineConfig &config,
                      const TaskTrace &trace);

/**
 * Run @p trace with @p num_threads task-generating threads assigned
 * round-robin (task t emitted by thread t % num_threads) — the
 * shared-data multi-pipeline configuration: threads need not own
 * disjoint objects, the sharded directory orders shared accesses.
 */
RunResult runHardwareThreads(const PipelineConfig &config,
                             const TaskTrace &trace,
                             unsigned num_threads);

/** Run @p trace through the software-runtime baseline. */
SwRunResult runSoftware(const SwRuntimeConfig &config,
                        const TaskTrace &trace);

/**
 * The paper's evaluation configuration (section VI-A conclusion):
 * 8 TRSs, 2 ORT/OVT pairs, 512 KB of ORT storage, 6 MB of TRS
 * storage, driving @p cores worker cores.
 */
PipelineConfig paperConfig(unsigned cores = 256);

/**
 * @deprecated Use RunOptions (driver/run_options.hh): this wrapper
 * applies only the historical NoC subset (topology, placement,
 * placement seed, batching, idealAdmission, simThreads) and will be
 * removed next PR.
 */
[[deprecated("use tss::RunOptions::parse(args).apply(cfg)")]]
void applyNocArgs(const CliArgs &args, PipelineConfig &cfg);

/**
 * @deprecated Use RunOptions (driver/run_options.hh): parse() +
 * apply(RelocationOptions&) / relocateRequested(). Removed next PR.
 */
[[deprecated("use tss::RunOptions::parse(args).apply(opts)")]]
bool applyRelocateArgs(const CliArgs &args, RelocationOptions &opts);

/**
 * Generate the named benchmark at @p scale (1.0 = paper-sized window
 * pressure, tens of thousands of tasks). Calls fatal() for unknown
 * names.
 */
TaskTrace makeWorkload(const std::string &name, double scale,
                       std::uint64_t seed = 1);

/**
 * One real-execution measurement: the simulated speedup of the
 * pipeline's schedule side by side with the wall-clock speedup of
 * actually running the kernels on a thread pool.
 */
struct RealExecResult
{
    unsigned threads = 0;
    double seqSeconds = 0;    ///< sequential real execution
    double parSeconds = 0;    ///< graph-mode parallel execution
    double wallSpeedup = 0;   ///< seqSeconds / parSeconds
    double simSpeedup = 0;    ///< simulated, same core count
    std::size_t versions = 0; ///< rename buffers used
    std::uint64_t steals = 0; ///< work-stealing deque steals
    bool bitIdentical = false; ///< parallel memory == sequential
};

/**
 * Really execute the real-kernel program @p info at @p seed: once
 * sequentially (wall-clock reference), once in graph mode on
 * @p threads, and once through the simulated pipeline with
 * @p threads cores — so callers can report measured wall-clock
 * speedup next to the simulator's predicted speedup. The simulated
 * run uses the program's *relocated* trace (see trace/relocate.hh),
 * so simSpeedup is deterministic across runs and machines. Fresh program
 * instances are built per execution; `bitIdentical` reports the
 * differential check.
 *
 * A sequential run always happens (it produces the reference
 * snapshot), but when @p seq_seconds_baseline > 0 that value is used
 * as `seqSeconds` for the speedup instead of the fresh measurement —
 * callers comparing several thread counts should measure one stable
 * baseline (e.g. best of N) and pass it to every call, so all rows
 * share a reference (see bench/parallel_exec.cpp).
 */
RealExecResult runParallelReal(const starss::RealProgramInfo &info,
                               std::uint64_t seed, unsigned threads,
                               double seq_seconds_baseline = 0);

} // namespace tss

#endif // TSS_DRIVER_EXPERIMENT_HH
