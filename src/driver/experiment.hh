/**
 * @file
 * Shared experiment entry points used by the bench harness, examples
 * and tests: run a trace through the hardware pipeline or the
 * software runtime and collect uniform results.
 */

#ifndef TSS_DRIVER_EXPERIMENT_HH
#define TSS_DRIVER_EXPERIMENT_HH

#include <string>

#include "core/config.hh"
#include "core/pipeline.hh"
#include "swruntime/sw_runtime.hh"
#include "trace/task_trace.hh"
#include "workload/workload.hh"

namespace tss
{

/** Run @p trace through a freshly built task superscalar system. */
RunResult runHardware(const PipelineConfig &config,
                      const TaskTrace &trace);

/** Run @p trace through the software-runtime baseline. */
SwRunResult runSoftware(const SwRuntimeConfig &config,
                        const TaskTrace &trace);

/**
 * The paper's evaluation configuration (section VI-A conclusion):
 * 8 TRSs, 2 ORT/OVT pairs, 512 KB of ORT storage, 6 MB of TRS
 * storage, driving @p cores worker cores.
 */
PipelineConfig paperConfig(unsigned cores = 256);

/**
 * Generate the named benchmark at @p scale (1.0 = paper-sized window
 * pressure, tens of thousands of tasks). Calls fatal() for unknown
 * names.
 */
TaskTrace makeWorkload(const std::string &name, double scale,
                       std::uint64_t seed = 1);

} // namespace tss

#endif // TSS_DRIVER_EXPERIMENT_HH
