/**
 * @file
 * The one run-configuration surface shared by every bench, example,
 * test driver and the tss-serve daemon: RunOptions parses the common
 * command-line knobs once (NoC topology/placement, operand batching,
 * flow-control credits, pipeline/module counts, storage capacities,
 * simulation-engine host threads, trace relocation) and applies them
 * onto a PipelineConfig / RelocationOptions pair.
 *
 * Every knob is tri-state: a field is applied only when it was
 * actually given on the command line, so callers keep their own
 * defaults by initializing the config *before* apply() — e.g. fig17
 * sets `cfg.numPipelines = 4; cfg.slicePacketCredits = 1;` and a bare
 * invocation leaves both intact while `--pipes=8` overrides one.
 *
 * Replaces the historical free functions `applyNocArgs` and
 * `applyRelocateArgs` plus the per-bench `--pipes`/`--credits`/
 * `--gen-threads` plumbing; the free functions survive one PR as thin
 * deprecated wrappers (driver/experiment.hh).
 */

#ifndef TSS_DRIVER_RUN_OPTIONS_HH
#define TSS_DRIVER_RUN_OPTIONS_HH

#include <optional>

#include "core/config.hh"
#include "driver/cli.hh"
#include "trace/relocate.hh"
#include "trace/task_trace.hh"

namespace tss
{

/** Parsed run configuration; see the file comment for semantics. */
class RunOptions
{
  public:
    RunOptions() = default;

    /**
     * Parse the shared knobs out of @p args:
     *
     *   --topology=fixed|ring|mesh   --placement=adjacent|spread|random
     *   --placement-seed=N  --batch  --ideal-admission  --credits=N
     *   --pipes=N  --trs=N  --ort=N  --trs-kb=N --ort-kb=N --ovt-kb=N
     *   --cores=N  --gen-threads=N   --sim-threads=N
     *   --lookahead=global|matrix
     *   --relocate  --relocate-seed=N  --relocate-align=N
     *   --no-rename  --no-chaining
     *   --trace=off|tail|full  --trace-out=PATH (implies full)
     *   --trace-filter=task,version,noc,engine,serve|all
     *   --trace-tail=N  --metrics-out=PATH
     *
     * Unknown *values* (e.g. --topology=torus) call fatal(); flags the
     * caller's bench does not care about are simply never applied.
     */
    static RunOptions parse(const CliArgs &args);

    /** Apply every present hardware knob onto @p cfg. */
    void apply(PipelineConfig &cfg) const;

    /** Apply the present relocation knobs onto @p reloc. */
    void apply(RelocationOptions &reloc) const;

    /** Apply both halves: the full RunOptions contract. */
    void
    apply(PipelineConfig &cfg, RelocationOptions &reloc) const
    {
        apply(cfg);
        apply(reloc);
    }

    /**
     * The historical applyNocArgs subset: topology, placement,
     * placement seed, batching, idealAdmission, simThreads and
     * lookahead mode only — no structural knobs. Used by the
     * deprecated wrapper.
     */
    void applyNoc(PipelineConfig &cfg) const;

    /** True when `--relocate` was given. */
    bool relocateRequested() const { return relocate; }

    /**
     * Relocate @p trace in place when `--relocate` was given (using
     * the parsed seed/alignment); otherwise warn if relocation knobs
     * were passed without `--relocate` and leave the trace untouched.
     * Returns whether relocation happened.
     */
    bool maybeRelocate(TaskTrace &trace) const;

    /** `--gen-threads`, or @p fallback when absent (min 1). */
    unsigned genThreads(unsigned fallback) const;

    /// @name Parsed knobs (present iff given on the command line).
    /// Public so callers with bench-specific policies — e.g. fig17
    /// forcing relocation regardless of --relocate — can inspect or
    /// override individual fields before apply().
    /// @{
    std::optional<TopologyKind> topology;
    std::optional<PlacementKind> placement;
    std::optional<std::uint64_t> placementSeed;
    bool batch = false;          ///< --batch given
    bool idealAdmission = false; ///< --ideal-admission given
    std::optional<unsigned> credits;
    std::optional<unsigned> pipes;
    std::optional<unsigned> trs;
    std::optional<unsigned> ort;
    std::optional<Bytes> trsKb;
    std::optional<Bytes> ortKb;
    std::optional<Bytes> ovtKb;
    std::optional<unsigned> cores;
    std::optional<unsigned> generatingThreads;
    std::optional<unsigned> simThreads;
    std::optional<bool> lookaheadMatrix;
    bool noRename = false;   ///< --no-rename given
    bool noChaining = false; ///< --no-chaining given
    bool relocate = false;   ///< --relocate given
    std::optional<std::uint64_t> relocateSeed;
    std::optional<std::uint64_t> relocateAlign;
    std::optional<obs::TraceMode> traceMode;
    std::optional<std::uint32_t> traceFilter;
    std::optional<unsigned> traceTail;
    std::optional<std::string> traceOut;
    std::optional<std::string> metricsOut;
    /// @}
};

} // namespace tss

#endif // TSS_DRIVER_RUN_OPTIONS_HH
