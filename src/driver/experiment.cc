#include "experiment.hh"

#include "sim/logging.hh"

namespace tss
{

RunResult
runHardware(const PipelineConfig &config, const TaskTrace &trace)
{
    Pipeline pipeline(config, trace);
    return pipeline.run();
}

SwRunResult
runSoftware(const SwRuntimeConfig &config, const TaskTrace &trace)
{
    SoftwareRuntime runtime(config, trace);
    return runtime.run();
}

PipelineConfig
paperConfig(unsigned cores)
{
    PipelineConfig cfg;
    cfg.numTrs = 8;
    cfg.numOrt = 2;
    cfg.trsTotalBytes = 6 * 1024 * 1024;
    cfg.ortTotalBytes = 512 * 1024;
    cfg.ovtTotalBytes = 512 * 1024;
    cfg.numCores = cores;
    return cfg;
}

TaskTrace
makeWorkload(const std::string &name, double scale, std::uint64_t seed)
{
    const WorkloadInfo *info = findWorkload(name);
    if (!info)
        fatal("unknown workload '%s'", name.c_str());
    WorkloadParams params;
    params.scale = scale;
    params.seed = seed;
    return info->generate(params);
}

} // namespace tss
