#include "experiment.hh"

#include <chrono>

#include "runtime/parallel_exec.hh"
#include "sim/logging.hh"

namespace tss
{

RunResult
runHardware(const PipelineConfig &config, const TaskTrace &trace)
{
    Pipeline pipeline(config, trace);
    return pipeline.run();
}

RunResult
runHardwareThreads(const PipelineConfig &config, const TaskTrace &trace,
                   unsigned num_threads)
{
    std::vector<unsigned> thread_of(trace.size());
    for (std::size_t t = 0; t < trace.size(); ++t)
        thread_of[t] = static_cast<unsigned>(t % num_threads);
    auto sys = SystemBuilder(config, trace)
                   .threads(std::move(thread_of))
                   .build();
    return sys->run();
}

SwRunResult
runSoftware(const SwRuntimeConfig &config, const TaskTrace &trace)
{
    SoftwareRuntime runtime(config, trace);
    return runtime.run();
}

PipelineConfig
paperConfig(unsigned cores)
{
    PipelineConfig cfg;
    cfg.numTrs = 8;
    cfg.numOrt = 2;
    cfg.trsTotalBytes = 6 * 1024 * 1024;
    cfg.ortTotalBytes = 512 * 1024;
    cfg.ovtTotalBytes = 512 * 1024;
    cfg.numCores = cores;
    return cfg;
}

void
applyNocArgs(const CliArgs &args, PipelineConfig &cfg)
{
    std::string topology = args.get("topology", "");
    if (!topology.empty())
        cfg.nocTopology = topologyFromString(topology);
    std::string placement = args.get("placement", "");
    if (!placement.empty())
        cfg.nocPlacement = placementFromString(placement);
    cfg.nocPlacementSeed = static_cast<std::uint64_t>(
        args.getLong("placement-seed",
                     static_cast<long>(cfg.nocPlacementSeed)));
    if (args.has("batch"))
        cfg.batchOperands = true;
    if (args.has("ideal-admission"))
        cfg.idealAdmission = true;
    long sim_threads = args.getLong(
        "sim-threads", static_cast<long>(cfg.simThreads));
    if (sim_threads < 1)
        fatal("--sim-threads must be >= 1");
    cfg.simThreads = static_cast<unsigned>(sim_threads);
}

bool
applyRelocateArgs(const CliArgs &args, RelocationOptions &opts)
{
    opts.layoutSeed = static_cast<std::uint64_t>(args.getLong(
        "relocate-seed", static_cast<long>(opts.layoutSeed)));
    opts.alignment = static_cast<std::uint64_t>(args.getLong(
        "relocate-align", static_cast<long>(opts.alignment)));
    return args.has("relocate");
}

TaskTrace
makeWorkload(const std::string &name, double scale, std::uint64_t seed)
{
    const WorkloadInfo *info = findWorkload(name);
    if (!info)
        fatal("unknown workload '%s'", name.c_str());
    WorkloadParams params;
    params.scale = scale;
    params.seed = seed;
    return info->generate(params);
}

RealExecResult
runParallelReal(const starss::RealProgramInfo &info, std::uint64_t seed,
                unsigned threads, double seq_seconds_baseline)
{
    RealExecResult result;
    result.threads = threads;

    auto sequential = info.make(seed);
    auto begin = std::chrono::steady_clock::now();
    sequential->context().runSequential();
    auto end = std::chrono::steady_clock::now();
    result.seqSeconds = seq_seconds_baseline > 0
        ? seq_seconds_baseline
        : std::chrono::duration<double>(end - begin).count();

    auto parallel = info.make(seed);
    starss::ParallelExecutor exec(parallel->context());
    starss::ParallelRunStats stats = exec.runGraph(threads);
    result.parSeconds = stats.wallSeconds;
    result.versions = stats.versions;
    result.steals = stats.steals;
    if (result.parSeconds > 0)
        result.wallSpeedup = result.seqSeconds / result.parSeconds;
    result.bitIdentical =
        parallel->snapshot() == sequential->snapshot();

    // Simulate on the relocated trace: synthetic operand addresses
    // make simSpeedup a pure function of (program, config) instead of
    // varying with where the allocator placed the program's memory.
    PipelineConfig cfg;
    cfg.numCores = threads;
    result.simSpeedup =
        runHardware(cfg, parallel->context().relocatedTrace()).speedup;
    return result;
}

} // namespace tss
