#include "experiment.hh"

#include <chrono>

#include "runtime/parallel_exec.hh"
#include "runtime/session.hh"
#include "sim/logging.hh"

namespace tss
{

RunResult
runHardware(const PipelineConfig &config, const TaskTrace &trace)
{
    return SystemBuilder(config, trace).build()->run();
}

RunResult
runHardwareThreads(const PipelineConfig &config, const TaskTrace &trace,
                   unsigned num_threads)
{
    std::vector<unsigned> thread_of(trace.size());
    for (std::size_t t = 0; t < trace.size(); ++t)
        thread_of[t] = static_cast<unsigned>(t % num_threads);
    auto sys = SystemBuilder(config, trace)
                   .threads(std::move(thread_of))
                   .build();
    return sys->run();
}

SwRunResult
runSoftware(const SwRuntimeConfig &config, const TaskTrace &trace)
{
    SoftwareRuntime runtime(config, trace);
    return runtime.run();
}

PipelineConfig
paperConfig(unsigned cores)
{
    PipelineConfig cfg;
    cfg.numTrs = 8;
    cfg.numOrt = 2;
    cfg.trsTotalBytes = 6 * 1024 * 1024;
    cfg.ortTotalBytes = 512 * 1024;
    cfg.ovtTotalBytes = 512 * 1024;
    cfg.numCores = cores;
    return cfg;
}

void
applyNocArgs(const CliArgs &args, PipelineConfig &cfg)
{
    RunOptions::parse(args).applyNoc(cfg);
}

bool
applyRelocateArgs(const CliArgs &args, RelocationOptions &opts)
{
    RunOptions parsed = RunOptions::parse(args);
    parsed.apply(opts);
    return parsed.relocateRequested();
}

TaskTrace
makeWorkload(const std::string &name, double scale, std::uint64_t seed)
{
    const WorkloadInfo *info = findWorkload(name);
    if (!info)
        fatal("unknown workload '%s'", name.c_str());
    WorkloadParams params;
    params.scale = scale;
    params.seed = seed;
    return info->generate(params);
}

RealExecResult
runParallelReal(const starss::RealProgramInfo &info, std::uint64_t seed,
                unsigned threads, double seq_seconds_baseline)
{
    RealExecResult result;
    result.threads = threads;

    // Fresh program instances per execution, each driven through the
    // Session lifecycle: the programs were captured at make() time,
    // so seal() freezes them immediately and every consumer below
    // sees the same immutable stream + relocated image.
    auto sequential = info.make(seed);
    Session seq(sequential->context(), info.name + "/seq");
    seq.seal();
    auto begin = std::chrono::steady_clock::now();
    seq.runSequential();
    auto end = std::chrono::steady_clock::now();
    result.seqSeconds = seq_seconds_baseline > 0
        ? seq_seconds_baseline
        : std::chrono::duration<double>(end - begin).count();

    auto parallel = info.make(seed);
    Session par(parallel->context(), info.name + "/par");
    par.seal();
    starss::ParallelRunStats stats = par.runParallel(threads);
    result.parSeconds = stats.wallSeconds;
    result.versions = stats.versions;
    result.steals = stats.steals;
    if (result.parSeconds > 0)
        result.wallSpeedup = result.seqSeconds / result.parSeconds;
    result.bitIdentical =
        parallel->snapshot() == sequential->snapshot();

    // Simulate the relocated image computed at seal(): synthetic
    // operand addresses make simSpeedup a pure function of
    // (program, config) instead of varying with where the allocator
    // placed the program's memory.
    PipelineConfig cfg;
    cfg.numCores = threads;
    result.simSpeedup = par.simulate(cfg).speedup;
    return result;
}

} // namespace tss
