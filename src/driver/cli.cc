#include "cli.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace tss
{

CliArgs::CliArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            fatal("unexpected positional argument '%s'", arg.c_str());
        }
        arg = arg.substr(2);
        auto eq_pos = arg.find('=');
        if (eq_pos == std::string::npos)
            values[arg] = "1";
        else
            values[arg.substr(0, eq_pos)] = arg.substr(eq_pos + 1);
    }
}

bool
CliArgs::has(const std::string &flag) const
{
    return values.count(flag) > 0;
}

std::string
CliArgs::get(const std::string &key, const std::string &fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

double
CliArgs::getDouble(const std::string &key, double fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
}

long
CliArgs::getLong(const std::string &key, long fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atol(it->second.c_str());
}

double
CliArgs::scale(double quick, double full, double fallback) const
{
    if (has("scale"))
        return getDouble("scale", fallback);
    if (has("quick"))
        return quick;
    if (has("full"))
        return full;
    return fallback;
}

} // namespace tss
