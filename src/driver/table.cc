#include "table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace tss
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : header(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    TSS_ASSERT(cells.size() == header.size(),
               "row width %zu != header width %zu", cells.size(),
               header.size());
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::num(std::uint64_t v)
{
    return std::to_string(v);
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << cells[c];
        }
        os << "\n";
    };
    emit(header);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << cells[c] << (c + 1 < cells.size() ? "," : "");
        os << "\n";
    };
    emit(header);
    for (const auto &row : rows)
        emit(row);
}

} // namespace tss
