/**
 * @file
 * Minimal command-line parsing shared by the bench binaries and
 * examples: `--key=value` options plus boolean flags.
 */

#ifndef TSS_DRIVER_CLI_HH
#define TSS_DRIVER_CLI_HH

#include <map>
#include <string>

namespace tss
{

/** Parsed command line. */
class CliArgs
{
  public:
    CliArgs(int argc, char **argv);

    bool has(const std::string &flag) const;
    std::string get(const std::string &key,
                    const std::string &fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    long getLong(const std::string &key, long fallback) const;

    /**
     * Benchmark scale preset: --quick selects a CI-sized run,
     * --full the paper-sized run; --scale=X overrides both.
     */
    double scale(double quick, double full, double fallback) const;

  private:
    std::map<std::string, std::string> values;
};

} // namespace tss

#endif // TSS_DRIVER_CLI_HH
