#include "run_options.hh"

#include "sim/logging.hh"

namespace tss
{

namespace
{

std::optional<unsigned>
parseUnsigned(const CliArgs &args, const char *key, long min_value = 0)
{
    if (!args.has(key))
        return std::nullopt;
    long value = args.getLong(key, 0);
    if (value < min_value)
        fatal("--%s must be >= %ld", key, min_value);
    return static_cast<unsigned>(value);
}

std::optional<std::uint64_t>
parseU64(const CliArgs &args, const char *key)
{
    if (!args.has(key))
        return std::nullopt;
    long value = args.getLong(key, 0);
    if (value < 0)
        fatal("--%s must be >= 0", key);
    return static_cast<std::uint64_t>(value);
}

} // namespace

RunOptions
RunOptions::parse(const CliArgs &args)
{
    RunOptions opts;
    std::string topo = args.get("topology", "");
    if (!topo.empty())
        opts.topology = topologyFromString(topo);
    std::string place = args.get("placement", "");
    if (!place.empty())
        opts.placement = placementFromString(place);
    opts.placementSeed = parseU64(args, "placement-seed");
    opts.batch = args.has("batch");
    opts.idealAdmission = args.has("ideal-admission");
    opts.credits = parseUnsigned(args, "credits");
    opts.pipes = parseUnsigned(args, "pipes", 1);
    opts.trs = parseUnsigned(args, "trs", 1);
    opts.ort = parseUnsigned(args, "ort", 1);
    if (auto kb = parseUnsigned(args, "trs-kb", 1))
        opts.trsKb = Bytes(*kb) * 1024;
    if (auto kb = parseUnsigned(args, "ort-kb", 1))
        opts.ortKb = Bytes(*kb) * 1024;
    if (auto kb = parseUnsigned(args, "ovt-kb", 1))
        opts.ovtKb = Bytes(*kb) * 1024;
    opts.cores = parseUnsigned(args, "cores", 1);
    opts.generatingThreads = parseUnsigned(args, "gen-threads", 1);
    opts.simThreads = parseUnsigned(args, "sim-threads", 1);
    std::string la = args.get("lookahead", "");
    if (!la.empty()) {
        if (la != "global" && la != "matrix")
            fatal("--lookahead must be global or matrix (got '%s')",
                  la.c_str());
        opts.lookaheadMatrix = (la == "matrix");
    }
    opts.noRename = args.has("no-rename");
    opts.noChaining = args.has("no-chaining");
    opts.relocate = args.has("relocate");
    opts.relocateSeed = parseU64(args, "relocate-seed");
    opts.relocateAlign = parseU64(args, "relocate-align");
    std::string trace = args.get("trace", "");
    if (!trace.empty()) {
        if (trace != "off" && trace != "tail" && trace != "full")
            fatal("--trace must be off, tail or full (got '%s')",
                  trace.c_str());
        opts.traceMode = obs::parseTraceMode(trace);
    }
    if (args.has("trace-filter"))
        opts.traceFilter =
            obs::parseTraceFilter(args.get("trace-filter", "all"));
    opts.traceTail = parseUnsigned(args, "trace-tail", 1);
    std::string traceOut = args.get("trace-out", "");
    if (!traceOut.empty())
        opts.traceOut = traceOut;
    std::string metricsOut = args.get("metrics-out", "");
    if (!metricsOut.empty())
        opts.metricsOut = metricsOut;
    return opts;
}

void
RunOptions::applyNoc(PipelineConfig &cfg) const
{
    if (topology)
        cfg.nocTopology = *topology;
    if (placement)
        cfg.nocPlacement = *placement;
    if (placementSeed)
        cfg.nocPlacementSeed = *placementSeed;
    if (batch)
        cfg.batchOperands = true;
    if (idealAdmission)
        cfg.idealAdmission = true;
    if (simThreads)
        cfg.simThreads = *simThreads;
    if (lookaheadMatrix)
        cfg.lookaheadMatrix = *lookaheadMatrix;
}

void
RunOptions::apply(PipelineConfig &cfg) const
{
    applyNoc(cfg);
    if (credits)
        cfg.slicePacketCredits = *credits;
    if (pipes)
        cfg.numPipelines = *pipes;
    if (trs)
        cfg.numTrs = *trs;
    if (ort)
        cfg.numOrt = *ort;
    if (trsKb)
        cfg.trsTotalBytes = *trsKb;
    if (ortKb)
        cfg.ortTotalBytes = *ortKb;
    if (ovtKb)
        cfg.ovtTotalBytes = *ovtKb;
    if (cores)
        cfg.numCores = *cores;
    if (noRename)
        cfg.renameOutputs = false;
    if (noChaining)
        cfg.consumerChaining = false;
    if (traceMode)
        cfg.traceMode = *traceMode;
    if (traceFilter)
        cfg.traceFilter = *traceFilter;
    if (traceTail)
        cfg.traceTailRecords = *traceTail;
    if (traceOut) {
        cfg.traceOutPath = *traceOut;
        // A requested export needs every record retained; an explicit
        // --trace=off|tail still wins (checked at System::build).
        if (!traceMode)
            cfg.traceMode = obs::TraceMode::Full;
    }
    if (metricsOut)
        cfg.metricsOutPath = *metricsOut;
}

void
RunOptions::apply(RelocationOptions &reloc) const
{
    if (relocateSeed)
        reloc.layoutSeed = *relocateSeed;
    if (relocateAlign)
        reloc.alignment = *relocateAlign;
}

bool
RunOptions::maybeRelocate(TaskTrace &trace) const
{
    if (!relocate) {
        if (relocateSeed || relocateAlign)
            warn("--relocate-seed/--relocate-align have no effect "
                 "without --relocate");
        return false;
    }
    RelocationOptions reloc;
    apply(reloc);
    trace = relocateTrace(trace, reloc);
    return true;
}

unsigned
RunOptions::genThreads(unsigned fallback) const
{
    unsigned n = generatingThreads.value_or(fallback);
    return n > 0 ? n : 1;
}

} // namespace tss
