/**
 * @file
 * Aligned text-table and CSV output for the bench harness; every
 * figure/table binary prints through this so outputs are uniform.
 */

#ifndef TSS_DRIVER_TABLE_HH
#define TSS_DRIVER_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace tss
{

/** A simple column-aligned table with optional CSV emission. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with @p precision digits. */
    static std::string num(double v, int precision = 1);
    static std::string num(std::uint64_t v);

    /** Render with padded columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV to @p os. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace tss

#endif // TSS_DRIVER_TABLE_HH
